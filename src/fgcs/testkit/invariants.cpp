#include "fgcs/testkit/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "fgcs/monitor/availability.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/serve/query.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::testkit {

namespace {

using monitor::AvailabilityState;

class Battery {
 public:
  Battery(const Scenario& s, const ScenarioOutcome& out) : s_(s), out_(out) {
    start_ = out.trace.horizon_start();
    end_ = out.trace.horizon_end();
  }

  std::vector<InvariantViolation> run() {
    check_fleet_shape();
    for (std::uint32_t m = 0; m < out_.machines.size(); ++m) {
      check_timeline_coverage(m);
      check_transition_legality(m);
      check_trace_monotonicity(m);
      check_trace_timeline_consistency(m);
    }
    if (out_.lifecycle_ran) check_guest_conservation();
    if (out_.flight_recorded) check_flight_stream();
    check_serve();
    return std::move(violations_);
  }

 private:
  template <typename... Parts>
  void fail(const char* invariant, Parts&&... parts) {
    std::ostringstream detail;
    (detail << ... << parts);
    violations_.push_back(InvariantViolation{invariant, detail.str()});
  }

  static bool legal_state(AvailabilityState st) {
    const int v = static_cast<int>(st);
    return v >= 1 && v <= 5;
  }

  void check_fleet_shape() {
    if (out_.machines.size() != s_.testbed.machines) {
      fail("fleet-shape", "expected ", s_.testbed.machines,
           " machine outcomes, got ", out_.machines.size());
    }
    if (out_.trace.machine_count() != s_.testbed.machines) {
      fail("fleet-shape", "trace machine_count ", out_.trace.machine_count(),
           " != config machines ", s_.testbed.machines);
    }
  }

  // The five-state timeline must tile the horizon exactly: contiguous,
  // non-negative intervals from horizon start to horizon end, and the
  // per-state occupancy totals must sum back to the horizon.
  void check_timeline_coverage(std::uint32_t m) {
    const auto& tl = out_.machines[m].timeline;
    if (tl.start() != start_ || tl.end() != end_) {
      fail("timeline-coverage", "machine ", m, ": timeline spans [",
           tl.start().as_micros(), ", ", tl.end().as_micros(),
           ")us, horizon is [", start_.as_micros(), ", ", end_.as_micros(),
           ")us");
      return;
    }
    const auto intervals = tl.intervals();
    if (intervals.empty()) {
      fail("timeline-coverage", "machine ", m, ": no intervals");
      return;
    }
    sim::SimTime cursor = start_;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      const auto& iv = intervals[i];
      if (iv.start != cursor) {
        fail("timeline-coverage", "machine ", m, ": interval ", i,
             " starts at ", iv.start.as_micros(), "us, expected ",
             cursor.as_micros(), "us (gap or overlap)");
        return;
      }
      if (iv.end < iv.start) {
        fail("timeline-coverage", "machine ", m, ": interval ", i,
             " has negative duration");
        return;
      }
      cursor = iv.end;
    }
    if (cursor != end_) {
      fail("timeline-coverage", "machine ", m, ": intervals end at ",
           cursor.as_micros(), "us, horizon ends at ", end_.as_micros(), "us");
    }
    sim::SimDuration occupied = sim::SimDuration::zero();
    for (int v = 1; v <= 5; ++v) {
      occupied += tl.time_in(static_cast<AvailabilityState>(v));
    }
    if (occupied != end_ - start_) {
      fail("timeline-coverage", "machine ", m, ": per-state occupancy sums to ",
           occupied.as_micros(), "us, horizon is ",
           (end_ - start_).as_micros(), "us");
    }
  }

  // Adjacent intervals must change state, and every state must be S1..S5.
  void check_transition_legality(std::uint32_t m) {
    const auto intervals = out_.machines[m].timeline.intervals();
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      if (!legal_state(intervals[i].state)) {
        fail("transition-legality", "machine ", m, ": interval ", i,
             " has out-of-range state ",
             static_cast<int>(intervals[i].state));
        return;
      }
      if (i > 0 && intervals[i].state == intervals[i - 1].state) {
        fail("transition-legality", "machine ", m, ": intervals ", i - 1,
             " and ", i, " are both ", to_string(intervals[i].state),
             " (self-transition)");
        return;
      }
    }
  }

  // Records are per-machine sorted, non-overlapping, inside the horizon,
  // carry a failure-state cause, and have sane observables.
  void check_trace_monotonicity(std::uint32_t m) {
    sim::SimTime prev_end = start_;
    const auto& records = out_.machines[m].records;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = records[i];
      if (r.machine != m) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " claims machine ", r.machine);
        return;
      }
      if (r.end < r.start) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " runs backwards (", r.start.as_micros(), " -> ",
             r.end.as_micros(), ")us");
        return;
      }
      if (r.start < prev_end) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " starts before the previous episode ended");
        return;
      }
      if (r.start < start_ || r.end > end_) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " leaves the horizon");
        return;
      }
      if (!monitor::is_failure(r.cause)) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " has non-failure cause ", to_string(r.cause));
        return;
      }
      if (!(r.host_cpu >= 0.0 && r.host_cpu <= 1.0 + 1e-9) ||
          !std::isfinite(r.host_cpu)) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " host_cpu out of [0,1]: ", r.host_cpu);
        return;
      }
      if (!(r.free_mem_mb >= 0.0) || !std::isfinite(r.free_mem_mb)) {
        fail("trace-monotone", "machine ", m, ": record ", i,
             " negative/NaN free_mem_mb: ", r.free_mem_mb);
        return;
      }
      prev_end = r.end;
    }
  }

  // Trace episodes and timeline failure occupancy describe the same
  // downtime, with one documented skew: an S3 episode's start is backdated
  // to the beginning of the load excursion (§4: the guest was already
  // suspended), while the timeline enters S3 only once the excursion has
  // sustained for the policy window. So per episode the record may exceed
  // the timeline by at most sustain_window + one sample period, and never
  // the other way around.
  void check_trace_timeline_consistency(std::uint32_t m) {
    const auto& tl = out_.machines[m].timeline;
    sim::SimDuration timeline_down =
        tl.time_in(AvailabilityState::kS3CpuUnavailable) +
        tl.time_in(AvailabilityState::kS4MemoryThrashing) +
        tl.time_in(AvailabilityState::kS5MachineUnavailable);
    sim::SimDuration trace_down = sim::SimDuration::zero();
    for (const auto& r : out_.machines[m].records) trace_down += r.duration();
    if (trace_down < timeline_down) {
      fail("trace-timeline", "machine ", m, ": trace episode time ",
           trace_down.as_micros(), "us < timeline failure time ",
           timeline_down.as_micros(), "us");
      return;
    }
    const sim::SimDuration slack_per_episode =
        s_.testbed.policy.sustain_window + s_.testbed.policy.sample_period;
    const sim::SimDuration bound =
        slack_per_episode *
        static_cast<std::int64_t>(out_.machines[m].records.size());
    if (trace_down - timeline_down > bound) {
      fail("trace-timeline", "machine ", m, ": trace episode time exceeds ",
           "timeline failure time by ",
           (trace_down - timeline_down).as_micros(), "us, bound is ",
           bound.as_micros(), "us over ", out_.machines[m].records.size(),
           " episode(s)");
    }
  }

  // Guest-work conservation: wall time bounds work, censoring pins jobs to
  // the horizon, migration accounting is consistent, and aggregates are
  // the exact sums of the per-job outcomes.
  void check_guest_conservation() {
    const auto& g = out_.guests;
    std::uint32_t completed = 0, restarts = 0, migrations = 0, checkpoints = 0;
    sim::SimDuration work_lost = sim::SimDuration::zero();
    for (std::size_t j = 0; j < g.jobs.size(); ++j) {
      const auto& job = g.jobs[j];
      if (job.first_machine >= s_.testbed.machines ||
          job.final_machine >= s_.testbed.machines) {
        fail("guest-conservation", "job ", j, ": machine id out of fleet");
      }
      if (job.response < sim::SimDuration::zero()) {
        fail("guest-conservation", "job ", j, ": negative response");
      }
      if (job.completed) {
        if (job.response < s_.lifecycle.job_length) {
          fail("guest-conservation", "job ", j, ": completed in ",
               job.response.str(), " < job length ",
               s_.lifecycle.job_length.str(),
               " (work appeared out of nowhere)");
        }
        if (job.submit + job.response > end_) {
          fail("guest-conservation", "job ", j, ": completes after horizon");
        }
      } else if (job.submit + job.response != end_) {
        fail("guest-conservation", "job ", j,
             ": censored but response does not reach the horizon");
      }
      if (job.work_lost < sim::SimDuration::zero()) {
        fail("guest-conservation", "job ", j, ": negative work_lost");
      }
      if (job.migrations > job.restarts) {
        fail("guest-conservation", "job ", j, ": ", job.migrations,
             " migrations > ", job.restarts, " restarts");
      }
      if (!s_.lifecycle.migrate_on_revocation &&
          (job.migrations != 0 || job.final_machine != job.first_machine)) {
        fail("guest-conservation", "job ", j,
             ": migrated with migration disabled");
      }
      completed += job.completed ? 1 : 0;
      restarts += job.restarts;
      migrations += job.migrations;
      checkpoints += job.checkpoints;
      work_lost += job.work_lost;
    }
    if (completed != g.completed || restarts != g.restarts ||
        migrations != g.migrations || checkpoints != g.checkpoints ||
        work_lost != g.work_lost) {
      fail("guest-conservation",
           "aggregate counters disagree with per-job sums");
    }
  }

  // The flight-recorder event stream (run_scenario_recorded) must agree
  // with the simulation it watched: every event lies inside the horizon,
  // per-machine detector events arrive in nondecreasing sim time (the
  // ring preserves recording order, and dropping oldest events keeps a
  // contiguous suffix, so this survives wrap-around), and — when nothing
  // was dropped — no machine closes more episodes than it opened.
  void check_flight_stream() {
    std::map<std::uint32_t, sim::SimTime> last_transition;
    std::map<std::uint32_t, sim::SimTime> last_episode;
    std::map<std::uint32_t, std::int64_t> episode_balance;
    for (std::size_t i = 0; i < out_.flight.size(); ++i) {
      const auto& e = out_.flight[i];
      if (e.at < start_ || e.at > end_) {
        fail("flight-horizon", "event ", i, " (",
             obs::format_flight_event(e), ") leaves the horizon [",
             start_.as_micros(), ", ", end_.as_micros(), ")us");
        return;
      }
      switch (e.kind) {
        case obs::FlightEventKind::kStateTransition: {
          auto [it, fresh] = last_transition.try_emplace(e.machine, e.at);
          if (!fresh && e.at < it->second) {
            fail("flight-monotone", "machine ", e.machine, ": transition at ",
                 e.at.as_micros(), "us recorded after one at ",
                 it->second.as_micros(), "us");
            return;
          }
          it->second = e.at;
          break;
        }
        case obs::FlightEventKind::kEpisodeOpened:
        case obs::FlightEventKind::kEpisodeClosed: {
          // Opens and closes interleave: an episode never starts before
          // the previous one ended (the detector clamps backdated S3
          // starts), so the combined sequence is nondecreasing.
          auto [it, fresh] = last_episode.try_emplace(e.machine, e.at);
          if (!fresh && e.at < it->second) {
            fail("flight-monotone", "machine ", e.machine,
                 ": episode event at ", e.at.as_micros(),
                 "us recorded after one at ", it->second.as_micros(), "us");
            return;
          }
          it->second = e.at;
          episode_balance[e.machine] +=
              e.kind == obs::FlightEventKind::kEpisodeOpened ? 1 : -1;
          if (out_.flight_dropped == 0 && episode_balance[e.machine] < 0) {
            fail("flight-episode-balance", "machine ", e.machine,
                 ": episode closed that was never opened (event ", i, ")");
            return;
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // The online serving layer, driven live by the scenario's trace in
  // global sim-time order (the order a running fleet's close events would
  // arrive): ingest must accept the monotone stream, probabilities must
  // be probabilities, answers must be bit-identical to the batch
  // predictor on the same history, stable across a snapshot swap, and
  // bit-identical under a full ingest+query replay.
  void check_serve() {
    if (s_.testbed.machines == 0 || out_.trace.machine_count() == 0) return;
    const auto records = out_.trace.records();
    std::vector<trace::UnavailabilityRecord> order(records.begin(),
                                                   records.end());
    std::sort(order.begin(), order.end(),
              [](const trace::UnavailabilityRecord& a,
                 const trace::UnavailabilityRecord& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.machine < b.machine;
              });

    serve::FeedConfig fc;
    fc.machines = s_.testbed.machines;
    fc.horizon_start = start_;
    fc.start_dow = s_.testbed.start_dow;
    fc.publish_every = 64;
    const auto drive = [&](serve::AvailabilityFeed& feed) {
      for (std::size_t i = 0; i < order.size(); ++i) {
        try {
          feed.ingest(order[i]);
        } catch (const ConfigError& e) {
          fail("serve-ingest", "feed rejected record ", i,
               " of the sim-time-ordered trace: ", e.what());
          return false;
        }
      }
      return true;
    };

    serve::AvailabilityFeed feed(fc);
    if (!drive(feed)) return;
    feed.publish();

    const trace::TraceIndex index(out_.trace);
    const trace::TraceCalendar calendar(s_.testbed.start_dow);
    predict::SemiMarkovPredictor batch;
    batch.attach(index, calendar);

    const serve::QueryEngine engine(feed);
    const auto snap = engine.pin();
    util::RngStream rng(s_.seed, {0x5345'5256ULL, 1});  // "SERV"
    struct Asked {
      serve::ServeQuery query;
      serve::QueryAnswer answer;
    };
    std::vector<Asked> asked;
    for (std::uint32_t m = 0; m < fc.machines; ++m) {
      for (int k = 0; k < 2; ++k) {
        serve::ServeQuery q;
        q.machine = m;
        q.at = feed.watermark(m) + sim::SimDuration::from_seconds(
                                       rng.uniform(1.0, 48.0 * 3600.0));
        q.window = sim::SimDuration::from_seconds(
            rng.uniform(600.0, 6.0 * 3600.0));
        const serve::QueryAnswer a = engine.query(*snap, q);
        if (!(a.p_available >= 0.0 && a.p_available <= 1.0)) {
          fail("serve-probability", "machine ", m, ": p_available ",
               a.p_available, " outside [0, 1]");
          return;
        }
        if (!(a.expected_occurrences >= 0.0) ||
            !std::isfinite(a.expected_occurrences)) {
          fail("serve-probability", "machine ", m,
               ": expected_occurrences not a finite non-negative value: ",
               a.expected_occurrences);
          return;
        }
        const predict::PredictionQuery pq{m, q.at, q.window};
        if (a.p_available != batch.predict_availability(pq) ||
            a.expected_occurrences != batch.predict_occurrences(pq)) {
          fail("serve-batch-equivalence", "machine ", m,
               ": incremental answer diverges from the batch predictor at ",
               q.at.as_micros(), "us");
          return;
        }
        asked.push_back({q, a});
      }
    }

    // A publish with no intervening ingest must advance the version and
    // leave every answer bit-identical.
    feed.publish();
    const auto reswapped = engine.pin();
    if (reswapped->version <= snap->version) {
      fail("serve-swap", "publish did not advance the snapshot version (",
           reswapped->version, " after ", snap->version, ")");
      return;
    }
    for (const auto& [q, a] : asked) {
      const serve::QueryAnswer b = engine.query(*reswapped, q);
      if (b.p_available != a.p_available ||
          b.expected_occurrences != a.expected_occurrences) {
        fail("serve-swap-stability", "machine ", q.machine,
             ": answer changed across a snapshot swap with no ingest");
        return;
      }
    }

    // Replaying the identical ingest+query sequence on a fresh feed must
    // reproduce every answer bit-for-bit.
    serve::AvailabilityFeed replay(fc);
    if (!drive(replay)) return;
    replay.publish();
    const serve::QueryEngine replay_engine(replay);
    const auto replay_snap = replay_engine.pin();
    for (const auto& [q, a] : asked) {
      const serve::QueryAnswer b = replay_engine.query(*replay_snap, q);
      if (b.p_available != a.p_available ||
          b.expected_occurrences != a.expected_occurrences) {
        fail("serve-replay", "machine ", q.machine,
             ": replayed ingest+query sequence diverged");
        return;
      }
    }
  }

  const Scenario& s_;
  const ScenarioOutcome& out_;
  sim::SimTime start_;
  sim::SimTime end_;
  std::vector<InvariantViolation> violations_;
};

}  // namespace

std::vector<InvariantViolation> check_invariants(const Scenario& s,
                                                 const ScenarioOutcome& out) {
  return Battery(s, out).run();
}

std::string format_violations(
    std::span<const InvariantViolation> violations) {
  std::ostringstream out;
  for (const auto& v : violations) {
    out << "  [" << v.invariant << "] " << v.detail << "\n";
  }
  return out.str();
}

}  // namespace fgcs::testkit

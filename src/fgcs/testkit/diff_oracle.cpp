#include "fgcs/testkit/diff_oracle.hpp"

#include <sys/stat.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <vector>

#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/fleet/fleet.hpp"
#include "fgcs/os/machine.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/query/engine.hpp"
#include "fgcs/serve/query.hpp"
#include "fgcs/testkit/invariants.hpp"
#include "fgcs/testkit/scenario.hpp"
#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::testkit {

namespace {

/// "ORCL": root tag of oracle substreams.
constexpr std::uint64_t kOracleTag = 0x4F52'434C;

bool records_equal(const trace::UnavailabilityRecord& a,
                   const trace::UnavailabilityRecord& b) {
  return a.machine == b.machine && a.start == b.start && a.end == b.end &&
         a.cause == b.cause && a.host_cpu == b.host_cpu &&
         a.free_mem_mb == b.free_mem_mb;
}

DiffResult diff_traces(const trace::TraceSet& a, const trace::TraceSet& b,
                       const char* what) {
  if (a.machine_count() != b.machine_count() ||
      a.horizon_start() != b.horizon_start() ||
      a.horizon_end() != b.horizon_end()) {
    return DiffResult::mismatch(std::string(what) + ": horizon differs");
  }
  const auto ra = a.records();
  const auto rb = b.records();
  if (ra.size() != rb.size()) {
    std::ostringstream out;
    out << what << ": " << ra.size() << " vs " << rb.size() << " records";
    return DiffResult::mismatch(out.str());
  }
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (!records_equal(ra[i], rb[i])) {
      std::ostringstream out;
      out << what << ": record " << i << " differs (machine " << ra[i].machine
          << ", start " << ra[i].start.as_micros() << "us vs "
          << rb[i].start.as_micros() << "us)";
      return DiffResult::mismatch(out.str());
    }
  }
  return DiffResult::ok();
}

// --- oracle 1: analytic fast-forward vs. tick-by-tick scheduler ----------

/// A pre-drawn workload + action script replayed identically on both
/// machines (ProcessSpec programs hold closure state, so each machine gets
/// freshly built specs from the same parameters).
struct SchedulerScript {
  std::vector<double> host_usages;
  std::vector<int> host_nices;
  double guest_usage = 1.0;  // 1.0: fully CPU-bound
  int guest_nice = 19;
  struct Step {
    sim::SimDuration advance;
    enum class Action { kNone, kSuspend, kResume, kRenice } action;
    int renice_to = 0;
  };
  std::vector<Step> steps;
};

SchedulerScript draw_scheduler_script(std::uint64_t seed) {
  util::RngStream rng(seed, {kOracleTag, 1});
  SchedulerScript script;
  const std::size_t hosts = 1 + rng.uniform_index(3);
  for (std::size_t i = 0; i < hosts; ++i) {
    script.host_usages.push_back(rng.uniform(0.05, 0.95));
    script.host_nices.push_back(rng.bernoulli(0.8) ? 0 : 10);
  }
  static constexpr int kNices[] = {0, 10, 19};
  script.guest_nice = kNices[rng.uniform_index(3)];
  script.guest_usage = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.6, 1.0);
  const std::size_t steps = 8 + rng.uniform_index(8);
  bool guest_suspended = false;
  for (std::size_t i = 0; i < steps; ++i) {
    SchedulerScript::Step step;
    step.advance = sim::SimDuration::micros(
        rng.uniform_int(30'000'000, 300'000'000));  // 30s .. 5min, uneven
    step.action = SchedulerScript::Step::Action::kNone;
    const double u = rng.uniform();
    if (u < 0.25) {
      step.action = guest_suspended ? SchedulerScript::Step::Action::kResume
                                    : SchedulerScript::Step::Action::kSuspend;
      guest_suspended = !guest_suspended;
    } else if (u < 0.40) {
      step.action = SchedulerScript::Step::Action::kRenice;
      step.renice_to = kNices[rng.uniform_index(3)];
    }
    script.steps.push_back(step);
  }
  return script;
}

struct MachineUnderTest {
  os::Machine machine;
  std::vector<os::ProcessId> hosts;
  os::ProcessId guest = 0;
};

MachineUnderTest build_machine(const SchedulerScript& script,
                               std::uint64_t seed, bool fast_forward) {
  os::SchedulerParams sched = os::SchedulerParams::linux_2_4();
  sched.fast_forward = fast_forward;
  MachineUnderTest mut{
      os::Machine(sched, os::MemoryParams::linux_1gb(), seed), {}, 0};
  for (std::size_t i = 0; i < script.host_usages.size(); ++i) {
    mut.hosts.push_back(mut.machine.spawn(workload::synthetic_host(
        script.host_usages[i], script.host_nices[i])));
  }
  mut.guest = mut.machine.spawn(
      script.guest_usage >= 1.0
          ? workload::synthetic_guest(script.guest_nice)
          : workload::synthetic_guest_with_usage(script.guest_usage,
                                                 script.guest_nice));
  return mut;
}

DiffResult diff_machines(const MachineUnderTest& ff,
                         const MachineUnderTest& ref, std::size_t step) {
  std::ostringstream where;
  where << "step " << step << ": ";
  const auto& a = ff.machine;
  const auto& b = ref.machine;
  if (a.now() != b.now()) {
    return DiffResult::mismatch(where.str() + "clocks diverged");
  }
  const auto& ta = a.totals();
  const auto& tb = b.totals();
  if (ta.host != tb.host || ta.guest != tb.guest || ta.system != tb.system ||
      ta.idle != tb.idle) {
    std::ostringstream out;
    out << where.str() << "CPU totals differ: host " << ta.host.as_micros()
        << " vs " << tb.host.as_micros() << "us, guest "
        << ta.guest.as_micros() << " vs " << tb.guest.as_micros() << "us";
    return DiffResult::mismatch(out.str());
  }
  if (a.free_memory_mb() != b.free_memory_mb() ||
      a.thrash_time() != b.thrash_time()) {
    return DiffResult::mismatch(where.str() + "memory state differs");
  }
  for (std::size_t i = 0; i <= ff.hosts.size(); ++i) {
    const os::ProcessId pid =
        i < ff.hosts.size() ? ff.hosts[i] : ff.guest;
    const auto& pa = a.process(pid);
    const auto& pb = b.process(pid);
    if (pa.state() != pb.state() || pa.cpu_time() != pb.cpu_time()) {
      std::ostringstream out;
      out << where.str() << "pid " << pid << " differs: " << "cpu "
          << pa.cpu_time().as_micros() << " vs " << pb.cpu_time().as_micros()
          << "us, state " << to_string(pa.state()) << " vs "
          << to_string(pb.state());
      return DiffResult::mismatch(out.str());
    }
  }
  return DiffResult::ok();
}

DiffResult oracle_scheduler_fastforward(std::uint64_t seed) {
  const SchedulerScript script = draw_scheduler_script(seed);
  MachineUnderTest ff = build_machine(script, seed, /*fast_forward=*/true);
  MachineUnderTest ref = build_machine(script, seed, /*fast_forward=*/false);
  for (std::size_t i = 0; i < script.steps.size(); ++i) {
    const auto& step = script.steps[i];
    for (MachineUnderTest* mut : {&ff, &ref}) {
      switch (step.action) {
        case SchedulerScript::Step::Action::kSuspend:
          mut->machine.suspend(mut->guest);
          break;
        case SchedulerScript::Step::Action::kResume:
          mut->machine.resume(mut->guest);
          break;
        case SchedulerScript::Step::Action::kRenice:
          mut->machine.renice(mut->guest, step.renice_to);
          break;
        case SchedulerScript::Step::Action::kNone:
          break;
      }
      mut->machine.run_for(step.advance);
    }
    if (auto diff = diff_machines(ff, ref, i); !diff.match) return diff;
  }
  return DiffResult::ok();
}

// --- oracle 2: parallel vs. sequential testbed sweep ----------------------

/// A small testbed drawn through the scenario generator (capped horizon so
/// a 200-seed sweep stays cheap).
core::TestbedConfig small_testbed(std::uint64_t seed) {
  core::TestbedConfig config = generate_scenario(seed).testbed;
  config.days = std::min(config.days, 3);
  return config;
}

DiffResult oracle_testbed_parallel(std::uint64_t seed) {
  const core::TestbedConfig config = small_testbed(seed);
  const trace::TraceSet parallel = core::run_testbed(config);
  trace::TraceSet sequential(config.machines, parallel.horizon_start(),
                             parallel.horizon_end());
  for (std::uint32_t m = 0; m < config.machines; ++m) {
    for (auto& record : core::run_testbed_machine(config, m)) {
      sequential.add(record);
    }
  }
  return diff_traces(parallel, sequential, "parallel vs sequential");
}

// --- oracle 3: salvage vs. strict readers on clean serializations ---------

DiffResult oracle_trace_roundtrip(std::uint64_t seed) {
  const trace::TraceSet original = core::run_testbed(small_testbed(seed));

  std::ostringstream csv, binary;
  trace::write_trace_csv(original, csv);
  trace::write_trace_binary(original, binary);

  std::istringstream csv_strict(csv.str());
  std::istringstream csv_lenient(csv.str());
  std::istringstream bin_strict(binary.str());
  std::istringstream bin_lenient(binary.str());

  const trace::TraceSet strict_csv = trace::read_trace_csv(csv_strict);
  const trace::LoadReport salvage_csv =
      trace::read_trace_csv_salvage(csv_lenient);
  const trace::TraceSet strict_bin = trace::read_trace_binary(bin_strict);
  const trace::LoadReport salvage_bin =
      trace::read_trace_binary_salvage(bin_lenient);

  if (!salvage_csv.clean()) {
    return DiffResult::mismatch("CSV salvage not clean on intact input");
  }
  if (!salvage_bin.clean()) {
    return DiffResult::mismatch("binary salvage not clean on intact input");
  }
  // Strict and salvage must agree bit-for-bit on both formats; the binary
  // format must additionally round-trip the original exactly (CSV goes
  // through decimal text, so it only has to match its own re-read).
  if (auto diff = diff_traces(strict_csv, salvage_csv.trace,
                              "CSV strict vs salvage");
      !diff.match) {
    return diff;
  }
  if (auto diff = diff_traces(strict_bin, salvage_bin.trace,
                              "binary strict vs salvage");
      !diff.match) {
    return diff;
  }
  return diff_traces(original, strict_bin, "original vs binary round-trip");
}

// --- oracle 4: semi-Markov predictor vs. brute-force enumeration ----------

struct TinyChain {
  trace::TraceSet trace;
  trace::DayOfWeek start_dow = trace::DayOfWeek::kMonday;
  std::vector<predict::PredictionQuery> queries;
};

TinyChain draw_tiny_chain(std::uint64_t seed) {
  util::RngStream rng(seed, {kOracleTag, 4});
  TinyChain chain;
  const int days = static_cast<int>(10 + rng.uniform_index(18));
  const sim::SimTime start = sim::SimTime::epoch();
  const sim::SimTime end = start + sim::SimDuration::days(days);
  chain.start_dow = static_cast<trace::DayOfWeek>(rng.uniform_index(7));
  chain.trace = trace::TraceSet(1, start, end);

  const double gap_mean_h = rng.uniform(1.0, 8.0);
  const double down_mean_min = rng.uniform(5.0, 90.0);
  sim::SimTime t = start;
  while (true) {
    t += sim::SimDuration::from_seconds(
        std::max(60.0, rng.exponential(gap_mean_h * 3600.0)));
    const sim::SimTime ep_end =
        t + sim::SimDuration::from_seconds(
                std::max(1.0, rng.exponential(down_mean_min * 60.0)));
    if (ep_end >= end) break;
    trace::UnavailabilityRecord record;
    record.machine = 0;
    record.start = t;
    record.end = ep_end;
    record.cause = rng.bernoulli(0.5)
                       ? monitor::AvailabilityState::kS3CpuUnavailable
                       : monitor::AvailabilityState::kS5MachineUnavailable;
    record.host_cpu = rng.uniform(0.0, 1.0);
    record.free_mem_mb = rng.uniform(0.0, 900.0);
    chain.trace.add(record);
    t = ep_end;
  }

  for (int i = 0; i < 8; ++i) {
    predict::PredictionQuery q;
    q.machine = 0;
    q.start = start + sim::SimDuration::from_seconds(
                          rng.uniform(3600.0, (end - start).as_seconds()));
    q.length = sim::SimDuration::from_seconds(rng.uniform(600.0, 6.0 * 3600.0));
    chain.queries.push_back(q);
  }
  return chain;
}

/// Independent reimplementation of the semi-Markov estimate, straight from
/// the record list (no TraceIndex, no Ecdf).
struct BruteSemiMarkov {
  const std::vector<trace::UnavailabilityRecord>& episodes;  // sorted
  const trace::TraceCalendar& calendar;
  sim::SimTime horizon_start;
  predict::SemiMarkovConfig config;

  std::vector<double> history_gaps(const predict::PredictionQuery& q) const {
    const bool want_weekend = calendar.is_weekend(q.start);
    std::vector<double> lengths;
    for (std::size_t i = 1; i < episodes.size(); ++i) {
      if (episodes[i].start >= q.start) break;
      const sim::SimTime gap_start = episodes[i - 1].end;
      const sim::SimTime gap_end = episodes[i].start;
      if (gap_end <= gap_start) continue;
      if (calendar.is_weekend(gap_start) != want_weekend) continue;
      lengths.push_back((gap_end - gap_start).as_hours());
    }
    return lengths;
  }

  static double survival(const std::vector<double>& lengths, double x) {
    std::size_t at_most = 0;
    for (double l : lengths) {
      if (l <= x) ++at_most;
    }
    return 1.0 - static_cast<double>(at_most) /
                     static_cast<double>(lengths.size());
  }

  double availability(const predict::PredictionQuery& q) const {
    bool inside = false;
    sim::SimTime last_end = horizon_start;
    for (const auto& ep : episodes) {
      if (ep.start <= q.start && q.start < ep.end) inside = true;
      if (ep.end <= q.start && ep.end > last_end) last_end = ep.end;
    }
    if (inside) return 0.0;
    const auto lengths = history_gaps(q);
    if (lengths.size() < config.min_samples) return config.prior_availability;
    const double age_h = (q.start - last_end).as_hours();
    const double surv_age = survival(lengths, age_h);
    const double surv_horizon =
        survival(lengths, age_h + q.length.as_hours());
    if (surv_age <= 0.0) return std::min(config.prior_availability, 0.2);
    return std::clamp(surv_horizon / surv_age, 0.0, 1.0);
  }

  double occurrences(const predict::PredictionQuery& q) const {
    const auto lengths = history_gaps(q);
    if (lengths.empty()) return 0.0;
    double sum = 0.0;
    for (double l : lengths) sum += l;
    const double mean_h = sum / static_cast<double>(lengths.size());
    if (mean_h <= 0.0) return 0.0;
    return q.length.as_hours() / mean_h;
  }
};

DiffResult oracle_semi_markov_brute(std::uint64_t seed) {
  const TinyChain chain = draw_tiny_chain(seed);
  const trace::TraceIndex index(chain.trace);
  const trace::TraceCalendar calendar(chain.start_dow);
  predict::SemiMarkovPredictor predictor;
  predictor.attach(index, calendar);

  const auto episodes = chain.trace.machine_records(0);
  const BruteSemiMarkov brute{episodes, calendar,
                              chain.trace.horizon_start(),
                              predict::SemiMarkovConfig{}};

  for (std::size_t i = 0; i < chain.queries.size(); ++i) {
    const auto& q = chain.queries[i];
    const double fast_a = predictor.predict_availability(q);
    const double brute_a = brute.availability(q);
    if (std::abs(fast_a - brute_a) > 1e-9) {
      std::ostringstream out;
      out << "query " << i << ": availability " << fast_a << " vs brute "
          << brute_a;
      return DiffResult::mismatch(out.str());
    }
    const double fast_n = predictor.predict_occurrences(q);
    const double brute_n = brute.occurrences(q);
    if (std::abs(fast_n - brute_n) > 1e-9) {
      std::ostringstream out;
      out << "query " << i << ": occurrences " << fast_n << " vs brute "
          << brute_n;
      return DiffResult::mismatch(out.str());
    }
  }
  return DiffResult::ok();
}

// --- oracle 5: sharded fleet sweep vs. single-threaded testbed ------------

DiffResult oracle_fleet_sharded(std::uint64_t seed) {
  const core::TestbedConfig config = small_testbed(seed);
  const trace::TraceSet reference = core::run_testbed(config);

  // Shard geometry and worker count drawn from the seed: the merged fleet
  // trace must be bit-identical to the plain testbed for every partition.
  util::RngStream rng(seed, {kOracleTag, 5});
  fleet::FleetConfig fc;
  fc.testbed = config;
  fc.shard_machines = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
  fc.threads = 1 + rng.uniform_index(4);
  const fleet::FleetResult result = fleet::run_fleet(fc);
  if (result.total_records != reference.size()) {
    std::ostringstream out;
    out << "fleet recorded " << result.total_records << " records, testbed "
        << reference.size();
    return DiffResult::mismatch(out.str());
  }
  return diff_traces(result.load_trace(), reference,
                     "sharded fleet vs testbed");
}

// --- oracle 6: parallel vs. sequential prediction study -------------------

DiffResult diff_evaluations(const predict::EvaluationResult& a,
                            const predict::EvaluationResult& b,
                            const char* what) {
  std::ostringstream out;
  out << what << " [" << a.predictor << "]: ";
  if (a.predictor != b.predictor || a.queries != b.queries) {
    out << "query counts differ (" << a.queries << " vs " << b.queries << ")";
    return DiffResult::mismatch(out.str());
  }
  // Bit-exact comparison on every double: the parallel path must merge
  // per-machine partials in exactly the sequential order.
  if (a.brier != b.brier || a.accuracy != b.accuracy ||
      a.true_positive_rate != b.true_positive_rate ||
      a.false_positive_rate != b.false_positive_rate ||
      a.occurrence_mae != b.occurrence_mae ||
      a.base_availability != b.base_availability) {
    out << "aggregate metrics differ (brier " << a.brier << " vs " << b.brier
        << ")";
    return DiffResult::mismatch(out.str());
  }
  for (std::size_t i = 0; i < a.reliability.size(); ++i) {
    const auto& ra = a.reliability[i];
    const auto& rb = b.reliability[i];
    if (ra.count != rb.count || ra.mean_predicted != rb.mean_predicted ||
        ra.observed_available != rb.observed_available) {
      out << "reliability bucket " << i << " differs";
      return DiffResult::mismatch(out.str());
    }
  }
  return DiffResult::ok();
}

DiffResult oracle_prediction_parallel(std::uint64_t seed) {
  core::TestbedConfig testbed = small_testbed(seed);
  // The study needs a held-out evaluation period after training.
  testbed.days = std::max(testbed.days, 3);
  const trace::TraceSet trace = core::run_testbed(testbed);
  const trace::TraceCalendar calendar(testbed.start_dow);

  core::PredictionStudyConfig study;
  study.train_days = 1;
  study.windows = {sim::SimDuration::hours(1), sim::SimDuration::hours(4)};
  study.stride = sim::SimDuration::hours(1);

  study.parallel = true;
  const auto par = core::run_prediction_study(trace, calendar, study);
  study.parallel = false;
  const auto seq = core::run_prediction_study(trace, calendar, study);

  if (par.size() != seq.size()) {
    return DiffResult::mismatch("row counts differ");
  }
  for (std::size_t i = 0; i < par.size(); ++i) {
    if (par[i].window != seq[i].window) {
      return DiffResult::mismatch("row windows differ");
    }
    if (auto diff = diff_evaluations(par[i].result, seq[i].result,
                                     "parallel vs sequential study");
        !diff.match) {
      return diff;
    }
  }
  return DiffResult::ok();
}

// --- oracle 7: flight-recorder capture vs. replayed capture --------------

/// Renders a capture the way a post-mortem dump does: sim-time-ordered,
/// one formatted line per event.
std::string render_flight(const ScenarioOutcome& out) {
  std::ostringstream text;
  for (const auto& e : obs::sim_time_ordered(out.flight)) {
    text << obs::format_flight_event(e) << "\n";
  }
  return text.str();
}

DiffResult oracle_flight_recorder(std::uint64_t seed) {
  Scenario s = generate_scenario(seed);
  // The capture is O(transitions); cap the horizon so two full runs stay
  // cheap while fault specs and the lifecycle still exercise every
  // event kind.
  s.testbed.days = std::min(s.testbed.days, 3);

  const ScenarioOutcome a = run_scenario_recorded(s);
  const ScenarioOutcome b = run_scenario_recorded(s);

  // The stream must satisfy its own invariant battery...
  const auto violations = check_invariants(s, a);
  if (!violations.empty()) {
    return DiffResult::mismatch("invariant violations:\n" +
                                format_violations(violations));
  }
  if (a.flight_dropped != b.flight_dropped) {
    std::ostringstream out;
    out << "dropped counts differ (" << a.flight_dropped << " vs "
        << b.flight_dropped << ")";
    return DiffResult::mismatch(out.str());
  }
  // ...and two same-seed captures must render to byte-identical
  // post-mortems (the total sort order leaves no room for ties to land
  // differently).
  const std::string ra = render_flight(a);
  const std::string rb = render_flight(b);
  if (ra != rb) {
    std::ostringstream out;
    out << "rendered post-mortems differ (" << a.flight.size() << " vs "
        << b.flight.size() << " events)";
    return DiffResult::mismatch(out.str());
  }
  if (a.flight.empty() && !a.trace.records().empty()) {
    return DiffResult::mismatch(
        "trace has episodes but the flight capture is empty");
  }
  return DiffResult::ok();
}

// --- oracle 8: columnar machine walk vs. per-sample event loop ------------

DiffResult oracle_soa_machine_step(std::uint64_t seed) {
  // Strip faults so the runner takes the columnar engine; the reference
  // entry point always runs the legacy per-sample event loop over the
  // identical config.
  core::TestbedConfig config = small_testbed(seed);
  config.faults = {};
  const core::TestbedRunner runner(config);

  trace::TraceSet columnar(config.machines, runner.horizon_start(),
                           runner.horizon_end());
  trace::TraceSet legacy(config.machines, runner.horizon_start(),
                         runner.horizon_end());
  core::MachineScratch scratch;
  std::vector<trace::UnavailabilityRecord> records;
  for (std::uint32_t m = 0; m < config.machines; ++m) {
    runner.run_into(m, scratch, records);
    for (const auto& r : records) columnar.add(r);
    for (const auto& r : runner.run_reference(m)) legacy.add(r);
  }
  return diff_traces(columnar, legacy, "columnar vs legacy walk");
}

// --- oracle 9: resumed fleet sweep vs. uninterrupted sweep ----------------

bool read_file_bytes(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

void write_file_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

void remove_tree_flat(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

DiffResult oracle_fleet_resume(std::uint64_t seed) {
  // Two checkpointed sweeps of the same config; the second directory is
  // "doctored" (a segment deleted, a byte flipped, a state blob removed,
  // or the whole manifest erased — drawn from the seed) and then resumed.
  // The resumed directory must come back byte-identical to the clean one:
  // skipped shards splice, damaged shards re-run, and the metrics segment
  // rebuilds from the restored bins.
  util::RngStream rng(seed, {kOracleTag, 9});
  const std::string base = "fgcs-oracle-resume." +
                           std::to_string(::getpid()) + "." +
                           std::to_string(seed);
  const std::string clean_dir = base + "/clean";
  const std::string crash_dir = base + "/doctored";
  ::mkdir(base.c_str(), 0755);

  fleet::FleetConfig fc;
  fc.testbed = small_testbed(seed);
  fc.shard_machines = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
  fc.threads = 1 + rng.uniform_index(4);
  fc.metrics_resolution = sim::SimDuration::hours(6);

  const auto sweep = [&](const std::string& dir, bool resume) {
    if (!resume) {
      remove_tree_flat(dir);
      ::mkdir(dir.c_str(), 0755);
    }
    fleet::FleetConfig run = fc;
    run.spill_dir = dir;
    run.metrics_path = dir + "/metrics.met1";
    run.resume = resume;
    return fleet::run_fleet(run);
  };

  const auto cleanup = [&] {
    remove_tree_flat(clean_dir);
    remove_tree_flat(crash_dir);
    ::rmdir(base.c_str());
  };

  const fleet::FleetResult clean = sweep(clean_dir, false);
  fleet::FleetResult doctored = sweep(crash_dir, false);

  // Doctor the second directory.
  const std::size_t victim = rng.uniform_index(doctored.shards.size());
  char victim_name[32];
  std::snprintf(victim_name, sizeof victim_name, "shard-%04zu", victim);
  const std::string victim_seg =
      crash_dir + "/" + victim_name + std::string(".trc2");
  const int damage = static_cast<int>(rng.uniform_index(4));
  switch (damage) {
    case 0:  // segment vanishes
      ::unlink(victim_seg.c_str());
      break;
    case 1: {  // one byte of the segment flips
      std::string bytes;
      if (!read_file_bytes(victim_seg, bytes) || bytes.empty()) {
        cleanup();
        return DiffResult::mismatch("doctored segment unreadable");
      }
      bytes[rng.uniform_index(bytes.size())] ^= 0x40;
      write_file_bytes(victim_seg, bytes);
      break;
    }
    case 2:  // state blob vanishes
      ::unlink((crash_dir + "/" + victim_name + std::string(".state")).c_str());
      break;
    default:  // the whole manifest vanishes: full (fresh-start) resume
      ::unlink((crash_dir + "/MANIFEST").c_str());
      break;
  }

  fleet::FleetResult resumed;
  try {
    resumed = sweep(crash_dir, true);
  } catch (const std::exception& e) {
    cleanup();
    return DiffResult::mismatch(std::string("resume threw: ") + e.what());
  }
  // A missing manifest means a fresh start (0 resumed); any other damage
  // invalidates exactly the victim shard.
  const std::size_t expected =
      damage == 3 ? 0 : clean.shards.size() - 1;
  if (resumed.resumed_shards != expected) {
    cleanup();
    std::ostringstream out;
    out << "resumed " << resumed.resumed_shards << " shards, expected "
        << expected << " (damage mode " << damage << ")";
    return DiffResult::mismatch(out.str());
  }

  std::vector<std::string> names;
  for (std::size_t s = 0; s < clean.shards.size(); ++s) {
    char name[32];
    std::snprintf(name, sizeof name, "shard-%04zu.trc2", s);
    names.emplace_back(name);
  }
  names.emplace_back("metrics.met1");
  names.emplace_back("MANIFEST");
  for (const auto& name : names) {
    std::string a, b;
    if (!read_file_bytes(clean_dir + "/" + name, a) ||
        !read_file_bytes(crash_dir + "/" + name, b)) {
      cleanup();
      return DiffResult::mismatch(name + " unreadable after resume");
    }
    if (a != b) {
      cleanup();
      std::ostringstream out;
      out << name << " diverges after resume (" << b.size() << " vs "
          << a.size() << " bytes, damage mode " << damage << ")";
      return DiffResult::mismatch(out.str());
    }
  }
  cleanup();
  return DiffResult::ok();
}

// --- oracle 10: online serve feed vs. batch predictor on each prefix ------

DiffResult oracle_serve_incremental(std::uint64_t seed) {
  util::RngStream rng(seed, {kOracleTag, 10});
  const auto machines = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
  const int days = static_cast<int>(10 + rng.uniform_index(18));
  const sim::SimTime start = sim::SimTime::epoch();
  const sim::SimTime end = start + sim::SimDuration::days(days);
  const auto start_dow = static_cast<trace::DayOfWeek>(rng.uniform_index(7));

  // Per-machine renewal chains (the tiny-chain generator of oracle 4,
  // widened to a small fleet), delivered in global sim-time order the way
  // a live simulation's close events would arrive.
  std::vector<trace::UnavailabilityRecord> records;
  for (std::uint32_t m = 0; m < machines; ++m) {
    const double gap_mean_h = rng.uniform(1.0, 8.0);
    const double down_mean_min = rng.uniform(5.0, 90.0);
    sim::SimTime t = start;
    while (true) {
      t += sim::SimDuration::from_seconds(
          std::max(60.0, rng.exponential(gap_mean_h * 3600.0)));
      const sim::SimTime ep_end =
          t + sim::SimDuration::from_seconds(
                  std::max(1.0, rng.exponential(down_mean_min * 60.0)));
      if (ep_end >= end) break;
      trace::UnavailabilityRecord record;
      record.machine = m;
      record.start = t;
      record.end = ep_end;
      record.cause = rng.bernoulli(0.5)
                         ? monitor::AvailabilityState::kS3CpuUnavailable
                         : monitor::AvailabilityState::kS5MachineUnavailable;
      record.host_cpu = rng.uniform(0.0, 1.0);
      record.free_mem_mb = rng.uniform(0.0, 900.0);
      records.push_back(record);
      t = ep_end;
    }
  }
  std::sort(records.begin(), records.end(),
            [](const trace::UnavailabilityRecord& a,
               const trace::UnavailabilityRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.machine < b.machine;
            });

  serve::FeedConfig fc;
  fc.machines = machines;
  fc.horizon_start = start;
  fc.start_dow = start_dow;
  fc.publish_every = 0;  // explicit publishes at the cut points
  serve::AvailabilityFeed feed(fc);
  const serve::QueryEngine engine(feed);
  const trace::TraceCalendar calendar(start_dow);

  // Prefix cuts: two random ones plus the full ingest (an empty chain
  // degenerates to the single empty-prefix check).
  std::vector<std::size_t> cuts;
  if (!records.empty()) {
    cuts.push_back(rng.uniform_index(records.size()) + 1);
    cuts.push_back(rng.uniform_index(records.size()) + 1);
  }
  cuts.push_back(records.size());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::size_t ingested = 0;
  for (const std::size_t cut : cuts) {
    while (ingested < cut) feed.ingest(records[ingested++]);
    feed.publish();
    const auto snap = feed.snapshot();
    if (snap->events != ingested) {
      std::ostringstream out;
      out << "snapshot events " << snap->events << " after ingesting "
          << ingested;
      return DiffResult::mismatch(out.str());
    }

    // The batch predictor trained on exactly this prefix.
    trace::TraceSet prefix(machines, start, end);
    for (std::size_t i = 0; i < ingested; ++i) prefix.add(records[i]);
    const trace::TraceIndex index(prefix);
    predict::SemiMarkovPredictor batch;
    batch.attach(index, calendar);

    for (std::uint32_t m = 0; m < machines; ++m) {
      for (int k = 0; k < 4; ++k) {
        // Strictly past the machine's watermark, so the batch predictor's
        // history window covers the same episodes the feed ingested.
        const sim::SimTime at =
            feed.watermark(m) +
            sim::SimDuration::from_seconds(rng.uniform(1.0, 72.0 * 3600.0));
        const sim::SimDuration window =
            sim::SimDuration::from_seconds(rng.uniform(600.0, 6.0 * 3600.0));
        const serve::QueryAnswer online =
            engine.query(*snap, serve::ServeQuery{m, at, window});
        const predict::PredictionQuery pq{m, at, window};
        const double batch_a = batch.predict_availability(pq);
        const double batch_n = batch.predict_occurrences(pq);
        // Bit-identical, not approximately equal: both paths must reduce
        // to the same shared arithmetic on the same sample multiset.
        if (online.p_available != batch_a ||
            online.expected_occurrences != batch_n) {
          std::ostringstream out;
          out << std::setprecision(17) << "prefix " << ingested
              << ", machine " << m << ", query " << k << ": online ("
              << online.p_available << ", " << online.expected_occurrences
              << ") vs batch (" << batch_a << ", " << batch_n << ")";
          return DiffResult::mismatch(out.str());
        }
      }
    }
  }
  return DiffResult::ok();
}

// --- oracle 11: pushdown segment scan vs. brute force and materializer ----

DiffResult diff_query_results(const query::QueryResult& a,
                              const query::QueryResult& b, const char* what) {
  std::ostringstream out;
  out << std::setprecision(17) << what << ": ";
  const auto range_eq = [](const core::Table2Stats::Range& x,
                           const core::Table2Stats::Range& y) {
    return x.min == y.min && x.max == y.max && x.mean == y.mean;
  };
  if (a.table2.machines != b.table2.machines ||
      !range_eq(a.table2.total, b.table2.total) ||
      !range_eq(a.table2.cpu_contention, b.table2.cpu_contention) ||
      !range_eq(a.table2.mem_contention, b.table2.mem_contention) ||
      !range_eq(a.table2.urr, b.table2.urr) ||
      a.table2.cpu_pct_min != b.table2.cpu_pct_min ||
      a.table2.cpu_pct_max != b.table2.cpu_pct_max ||
      a.table2.mem_pct_min != b.table2.mem_pct_min ||
      a.table2.mem_pct_max != b.table2.mem_pct_max ||
      a.table2.urr_pct_min != b.table2.urr_pct_min ||
      a.table2.urr_pct_max != b.table2.urr_pct_max ||
      a.table2.reboot_fraction_of_urr != b.table2.reboot_fraction_of_urr) {
    out << "table2 differs (total mean " << a.table2.total.mean << " vs "
        << b.table2.total.mean << ")";
    return DiffResult::mismatch(out.str());
  }
  const auto class_eq = [](const query::IntervalClassSummary& x,
                           const query::IntervalClassSummary& y) {
    return x.count == y.count && x.mean_hours == y.mean_hours &&
           x.frac_under_5min == y.frac_under_5min &&
           x.frac_5min_to_2h == y.frac_5min_to_2h &&
           x.frac_2h_to_4h == y.frac_2h_to_4h &&
           x.frac_4h_to_6h == y.frac_4h_to_6h;
  };
  if (!class_eq(a.intervals.weekday, b.intervals.weekday) ||
      !class_eq(a.intervals.weekend, b.intervals.weekend)) {
    out << "intervals differ (weekday mean " << a.intervals.weekday.mean_hours
        << " vs " << b.intervals.weekday.mean_hours << ")";
    return DiffResult::mismatch(out.str());
  }
  if (a.hourly.weekday_days != b.hourly.weekday_days ||
      a.hourly.weekend_days != b.hourly.weekend_days) {
    out << "hourly day counts differ";
    return DiffResult::mismatch(out.str());
  }
  for (std::size_t h = 0; h < 24; ++h) {
    const auto row_eq = [](const core::HourlyPattern::HourRow& x,
                           const core::HourlyPattern::HourRow& y) {
      return x.mean == y.mean && x.min == y.min && x.max == y.max &&
             x.stddev == y.stddev;
    };
    if (!row_eq(a.hourly.weekday[h], b.hourly.weekday[h]) ||
        !row_eq(a.hourly.weekend[h], b.hourly.weekend[h])) {
      out << "hourly row " << h << " differs";
      return DiffResult::mismatch(out.str());
    }
  }
  if (a.relative_deviation_weekday != b.relative_deviation_weekday ||
      a.relative_deviation_weekend != b.relative_deviation_weekend) {
    out << "relative deviation differs";
    return DiffResult::mismatch(out.str());
  }
  if (a.training.machines != b.training.machines ||
      a.training.machines_with_history != b.training.machines_with_history ||
      a.training.gap_samples != b.training.gap_samples ||
      a.training.availability_sum != b.training.availability_sum ||
      a.training.occurrences_sum != b.training.occurrences_sum) {
    out << "training scan differs (availability sum "
        << a.training.availability_sum << " vs " << b.training.availability_sum
        << ")";
    return DiffResult::mismatch(out.str());
  }
  if (a.stats.records_matched != b.stats.records_matched) {
    out << "matched " << a.stats.records_matched << " vs "
        << b.stats.records_matched << " records";
    return DiffResult::mismatch(out.str());
  }
  return DiffResult::ok();
}

DiffResult oracle_query_pushdown(std::uint64_t seed) {
  // A spilled fleet queried three ways: the zone-map pushdown scan, the
  // brute-force full scan (pruning disabled), and the materializing
  // analyzer + predictor on the predicate-filtered TraceSet. All three
  // must agree bit-for-bit on every aggregate.
  util::RngStream rng(seed, {kOracleTag, 11});
  const std::string dir = "fgcs-oracle-query." + std::to_string(::getpid()) +
                          "." + std::to_string(seed);
  remove_tree_flat(dir);
  ::mkdir(dir.c_str(), 0755);
  const auto cleanup = [&] { remove_tree_flat(dir); };

  fleet::FleetConfig fc;
  fc.testbed = small_testbed(seed);
  fc.shard_machines = static_cast<std::uint32_t>(1 + rng.uniform_index(3));
  fc.threads = 1 + rng.uniform_index(4);
  fc.spill_dir = dir;
  fc.metrics_path = dir + "/metrics.met1";
  fleet::run_fleet(fc);
  ::unlink((dir + "/metrics.met1").c_str());  // only *.trc2 is queried

  DiffResult result = DiffResult::ok();
  try {
    const query::SegmentQuery segments(query::SegmentQuery::list_segments(dir));
    const std::uint32_t machines = segments.machine_count();
    const sim::SimTime hs = segments.horizon_start();
    const sim::SimTime he = segments.horizon_end();

    // A seed-drawn predicate: any subset of the three clause kinds,
    // including empty machine/time ranges (which must match nothing).
    query::Predicate pred;
    if (rng.bernoulli(0.6)) {
      pred.has_machine = true;
      pred.machine_lo = static_cast<std::uint32_t>(
          rng.uniform_index(machines + 1));
      pred.machine_hi = static_cast<std::uint32_t>(
          rng.uniform_index(machines + 2));
    }
    if (rng.bernoulli(0.5)) {
      pred.has_cause = true;
      pred.cause = static_cast<std::uint8_t>(3 + rng.uniform_index(3));
    }
    if (rng.bernoulli(0.5)) {
      pred.has_time = true;
      const auto span =
          static_cast<std::uint64_t>((he - hs).as_micros());
      pred.time_lo_us =
          hs.as_micros() + static_cast<std::int64_t>(rng.uniform_index(span));
      pred.time_hi_us =
          hs.as_micros() + static_cast<std::int64_t>(rng.uniform_index(span));
    }
    if (query::Predicate::parse(pred.str()).str() != pred.str()) {
      cleanup();
      return DiffResult::mismatch("predicate parse/str fixpoint broken: " +
                                  pred.str());
    }

    query::QueryOptions opts;
    opts.predicate = pred;
    const query::QueryResult pushdown = segments.run(opts);
    query::QueryOptions brute_opts = opts;
    brute_opts.disable_pruning = true;
    const query::QueryResult brute = segments.run(brute_opts);

    if (pushdown.stats.blocks_scanned + pushdown.stats.blocks_skipped !=
        pushdown.stats.blocks_total) {
      cleanup();
      return DiffResult::mismatch("pushdown block accounting broken");
    }
    if (brute.stats.blocks_skipped != 0 ||
        brute.stats.blocks_scanned != brute.stats.blocks_total) {
      cleanup();
      return DiffResult::mismatch("brute scan skipped blocks");
    }
    if (auto diff = diff_query_results(pushdown, brute,
                                       "pushdown vs brute");
        !diff.match) {
      cleanup();
      return diff;
    }

    // Materializing baseline: the analyzer and per-machine predictor on
    // the predicate-filtered trace.
    trace::TraceSet filtered(machines, hs, he);
    std::uint64_t kept = 0;
    for (std::size_t s = 0; s < segments.segment_count(); ++s) {
      const trace::TraceSet seg = segments.segment(s).to_trace_set();
      for (const auto& r : seg.records()) {
        if (!pred.matches(r.machine, r.start.as_micros(), r.end.as_micros(),
                          static_cast<std::uint8_t>(r.cause))) {
          continue;
        }
        filtered.add(r);
        ++kept;
      }
    }
    if (kept != pushdown.stats.records_matched) {
      cleanup();
      std::ostringstream out;
      out << "engine matched " << pushdown.stats.records_matched
          << " records, materializer kept " << kept;
      return DiffResult::mismatch(out.str());
    }

    const trace::TraceCalendar calendar;
    const core::TraceAnalyzer analyzer(filtered, calendar);
    query::QueryResult ref;
    ref.table2 = analyzer.table2();
    const core::IntervalStats intervals = analyzer.intervals();
    const auto to_summary = [](const core::IntervalClassStats& c) {
      query::IntervalClassSummary s;
      s.count = c.count;
      s.mean_hours = c.mean_hours;
      s.frac_under_5min = c.frac_under_5min;
      s.frac_5min_to_2h = c.frac_5min_to_2h;
      s.frac_2h_to_4h = c.frac_2h_to_4h;
      s.frac_4h_to_6h = c.frac_4h_to_6h;
      return s;
    };
    ref.intervals.weekday = to_summary(intervals.weekday);
    ref.intervals.weekend = to_summary(intervals.weekend);
    ref.hourly = analyzer.hourly();
    ref.relative_deviation_weekday = analyzer.hourly_relative_deviation(false);
    ref.relative_deviation_weekend = analyzer.hourly_relative_deviation(true);

    const trace::TraceIndex index(filtered);
    predict::SemiMarkovPredictor batch;
    batch.attach(index, calendar);
    const sim::SimDuration window = sim::SimDuration::hours(1);
    ref.training.machines = machines;
    for (std::uint32_t m = 0; m < machines; ++m) {
      const predict::PredictionQuery pq{m, he, window};
      ref.training.availability_sum += batch.predict_availability(pq);
      ref.training.occurrences_sum += batch.predict_occurrences(pq);
    }
    // gap_samples / machines_with_history are engine-side observability
    // the batch predictor does not expose; the pushdown-vs-brute diff
    // already pinned them.
    ref.training.gap_samples = pushdown.training.gap_samples;
    ref.training.machines_with_history = pushdown.training.machines_with_history;
    ref.stats.records_matched = kept;

    if (auto diff = diff_query_results(pushdown, ref,
                                       "streaming vs materializing");
        !diff.match) {
      cleanup();
      return diff;
    }
  } catch (const std::exception& e) {
    cleanup();
    return DiffResult::mismatch(std::string("query threw: ") + e.what());
  }
  cleanup();
  return result;
}

}  // namespace

const std::vector<DiffOracle>& standard_oracles() {
  static const std::vector<DiffOracle> oracles = {
      {"scheduler-fastforward", oracle_scheduler_fastforward},
      {"testbed-parallel", oracle_testbed_parallel},
      {"trace-roundtrip", oracle_trace_roundtrip},
      {"semi-markov-brute", oracle_semi_markov_brute},
      {"fleet-sharded", oracle_fleet_sharded},
      {"prediction-parallel", oracle_prediction_parallel},
      {"flight-recorder", oracle_flight_recorder},
      {"soa-machine-step", oracle_soa_machine_step},
      {"fleet-resume", oracle_fleet_resume},
      {"serve-incremental", oracle_serve_incremental},
      {"query-pushdown", oracle_query_pushdown},
  };
  return oracles;
}

const DiffOracle* find_oracle(std::string_view name) {
  for (const auto& oracle : standard_oracles()) {
    if (oracle.name == name) return &oracle;
  }
  return nullptr;
}

std::vector<OracleFailure> run_oracles(std::uint64_t base_seed,
                                       int seeds_per_oracle) {
  std::vector<OracleFailure> failures;
  const auto& oracles = standard_oracles();
  for (std::size_t o = 0; o < oracles.size(); ++o) {
    for (int i = 0; i < seeds_per_oracle; ++i) {
      const std::uint64_t seed = util::RngStream::derive(
          base_seed, {kOracleTag, o, static_cast<std::uint64_t>(i)});
      const DiffResult result = oracles[o].run(seed);
      if (!result.match) {
        failures.push_back(OracleFailure{oracles[o].name, seed, result.detail});
      }
    }
  }
  return failures;
}

}  // namespace fgcs::testkit

// The deterministic-simulation harness driver.
//
// ScenarioRunner sweeps a block of seeds, generating, running, and
// invariant-checking one scenario per seed. Failures carry a
// copy-pasteable replay line (the scenario seed reproduces the failure
// bit-identically) and are auto-minimized by a delta-debugging shrinker
// before being reported: the shrinker repeatedly tries structurally
// smaller variants of the failing scenario (fewer machines, shorter
// horizon, fewer fault specs, no lifecycle) and keeps any variant that
// still fails, so the report shows the smallest reproduction found.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fgcs/testkit/invariants.hpp"
#include "fgcs/testkit/scenario.hpp"

namespace fgcs::testkit {

struct RunnerConfig {
  /// Root seed of the sweep; scenario i uses substream seed derive(seed, i).
  std::uint64_t seed = 20060806;
  /// Number of scenarios to generate and check.
  int scenarios = 100;
  /// Every Nth scenario is run twice and the two traces compared
  /// bit-for-bit (0 disables the replay check).
  int replay_check_every = 10;
  /// Auto-minimize failures with the delta-debugging shrinker.
  bool shrink_failures = true;
  /// Budget: maximum candidate evaluations per shrink.
  int max_shrink_evals = 200;
  /// Failures are narrated here as they happen (replay line + violations);
  /// null keeps the runner silent until the report.
  std::ostream* log = nullptr;
};

/// One failing scenario, minimized.
struct ScenarioFailure {
  std::uint64_t scenario_seed = 0;
  Scenario scenario;           // as generated from scenario_seed
  Scenario minimized;          // after shrinking (== scenario if disabled)
  std::vector<InvariantViolation> violations;  // from the original run
  /// Copy-pasteable reproduction, e.g.
  ///   fgcs::testkit::ScenarioRunner::replay(0x1234abcd)
  std::string replay;
};

struct RunnerReport {
  int scenarios_run = 0;
  int replay_checks = 0;
  std::vector<ScenarioFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

class ScenarioRunner {
 public:
  /// The failure predicate: violations found in one scenario. The default
  /// runs run_scenario + check_invariants; tests substitute synthetic
  /// checks to exercise the shrinker.
  using Check = std::function<std::vector<InvariantViolation>(const Scenario&)>;

  explicit ScenarioRunner(RunnerConfig config = {});

  void set_check(Check check) { check_ = std::move(check); }

  /// Sweeps config.scenarios seeds; returns all (minimized) failures.
  RunnerReport run();

  /// Generates + checks the single scenario named by `scenario_seed`
  /// (the seed printed in a failure's replay line). Returns nullopt when
  /// the scenario passes.
  std::optional<ScenarioFailure> run_one(std::uint64_t scenario_seed);

  /// The scenario a replay line names — bit-identical to the original.
  static Scenario replay(std::uint64_t scenario_seed) {
    return generate_scenario(scenario_seed);
  }

  /// Delta-debugging minimizer: returns the structurally smallest variant
  /// of `failing` that the check still rejects (possibly `failing` itself).
  Scenario shrink(const Scenario& failing) const;

  /// The seed of the i-th scenario in this runner's sweep.
  std::uint64_t scenario_seed_at(int index) const;

 private:
  std::vector<InvariantViolation> default_check(const Scenario& s) const;

  RunnerConfig config_;
  Check check_;
};

}  // namespace fgcs::testkit

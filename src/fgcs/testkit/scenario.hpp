// Seed-driven scenario generation for the deterministic-simulation harness.
//
// A Scenario is a complete, self-describing testbed experiment — fleet
// size, horizon, detector policy, workload profile, fault plan, and an
// optional guest-lifecycle study — derived from a single uint64 seed
// through keyed util::RngStream substreams. The same seed always yields
// the same scenario, and running a scenario is deterministic in the
// scenario alone, so any failure anywhere in the harness is reproducible
// from one number.
//
// Substream keying: every independent dimension (fleet shape, detector
// policy, fault plan, lifecycle) draws from its own RngStream keyed as
// (seed, {kScenarioTag, dimension}), so shrinking or editing one dimension
// never perturbs the draws of another.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fgcs/core/guest_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/monitor/state_timeline.hpp"
#include "fgcs/obs/flight_recorder.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::testkit {

/// A generated experiment. Plain data: shrinkers and tests may edit any
/// field and re-run.
struct Scenario {
  /// The generating seed (replay key). Preserved verbatim by the shrinker
  /// so a minimized scenario still names its origin.
  std::uint64_t seed = 0;

  core::TestbedConfig testbed;

  /// When true the guest-lifecycle study runs on top of the trace.
  bool run_lifecycle = false;
  core::GuestLifecycleConfig lifecycle;

  /// One-line human-readable description for failure reports.
  std::string str() const;
};

/// Derives a randomized small scenario from `seed`. Deterministic:
/// generate_scenario(s) == generate_scenario(s) field-for-field, always.
Scenario generate_scenario(std::uint64_t seed);

/// Per-machine detail captured during a scenario run.
struct MachineOutcome {
  std::vector<trace::UnavailabilityRecord> records;
  monitor::StateTimeline timeline;
};

/// Everything observable from one scenario run.
struct ScenarioOutcome {
  trace::TraceSet trace;
  std::vector<MachineOutcome> machines;
  bool lifecycle_ran = false;
  core::GuestStudyResult guests;

  /// Flight-recorder capture (run_scenario_recorded only). `flight` holds
  /// the retained ring contents in recorded order; check_invariants runs
  /// the flight battery when `flight_recorded` is set.
  bool flight_recorded = false;
  std::uint64_t flight_dropped = 0;
  std::vector<obs::FlightEvent> flight;
};

/// Runs the scenario to completion (testbed sweep + optional lifecycle).
/// Deterministic in the scenario; independent of thread count.
ScenarioOutcome run_scenario(const Scenario& s);

/// run_scenario under a scoped observer with an attached flight recorder:
/// the outcome additionally carries the recorded event ring, so
/// invariants (and the flight-recorder diff oracle) can audit the
/// telemetry stream itself. Deterministic in the scenario.
ScenarioOutcome run_scenario_recorded(const Scenario& s,
                                      std::size_t flight_capacity = 1 << 16);

}  // namespace fgcs::testkit

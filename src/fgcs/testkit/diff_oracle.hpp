// Differential oracles: paired implementations, machine-checked equal.
//
// Each oracle runs the same seeded input through two implementations that
// must agree — a fast path against its reference path, or a library
// component against an independent brute-force reimplementation — and
// diffs the full observable state:
//
//   scheduler-fastforward   os::Machine analytic fast-forward vs. the
//                           tick-by-tick reference scheduler
//   testbed-parallel        core::run_testbed (thread pool) vs. a
//                           sequential per-machine sweep
//   trace-roundtrip         salvage readers vs. strict readers on clean
//                           CSV and binary serializations
//   semi-markov-brute       predict::SemiMarkovPredictor vs. brute-force
//                           enumeration of the conditional-survival
//                           estimate on small synthetic chains
//   fleet-sharded           fleet::run_fleet (sharded, multi-thread) vs.
//                           core::run_testbed, over seed-drawn shard
//                           geometries and worker counts
//   prediction-parallel     core::run_prediction_study with parallel
//                           machine evaluation vs. the sequential path,
//                           every metric compared bit-for-bit
//   flight-recorder         run_scenario_recorded twice on the same
//                           scenario: both captures must pass the flight
//                           invariant battery and render to
//                           byte-identical sim-time-ordered post-mortems
//   soa-machine-step        TestbedRunner's columnar arena-backed walk
//                           (run_into) vs. run_reference's per-sample
//                           event loop, traces compared bit-for-bit
//   fleet-resume            a checkpointed sweep, crash-doctored (segment
//                           deleted / byte-flipped, state blob or
//                           manifest removed) and resumed, vs. the clean
//                           sweep — every segment, the metrics file, and
//                           the manifest byte-compared
//   serve-incremental       serve::AvailabilityFeed's incremental
//                           per-event state, queried at several ingest
//                           prefixes, vs. predict::SemiMarkovPredictor
//                           trained batch-style on the same prefix —
//                           predictions compared bit-for-bit
//   query-pushdown          query::SegmentQuery's zone-map pushdown scan
//                           vs. the brute-force full scan (pruning off)
//                           vs. the materializing analyzer + predictor on
//                           the predicate-filtered trace, under seed-drawn
//                           predicates — every aggregate bit-compared
//
// This replaces scattered hand-rolled equivalence tests with one API the
// CI property suite sweeps over hundreds of seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fgcs::testkit {

/// Outcome of one oracle on one seed.
struct DiffResult {
  bool match = true;
  std::string detail;  // first divergence found, empty on match

  static DiffResult ok() { return {}; }
  static DiffResult mismatch(std::string detail) {
    return DiffResult{false, std::move(detail)};
  }
};

/// A named paired-implementation check, deterministic in the seed.
struct DiffOracle {
  std::string name;
  std::function<DiffResult(std::uint64_t seed)> run;
};

/// The eleven standard oracles above.
const std::vector<DiffOracle>& standard_oracles();

/// Finds a standard oracle by name; nullptr when unknown.
const DiffOracle* find_oracle(std::string_view name);

struct OracleFailure {
  std::string oracle;
  std::uint64_t seed = 0;
  std::string detail;
};

/// Sweeps every standard oracle over `seeds_per_oracle` seeds derived from
/// `base_seed`; returns every divergence found (empty == all agree).
std::vector<OracleFailure> run_oracles(std::uint64_t base_seed,
                                       int seeds_per_oracle);

}  // namespace fgcs::testkit

#include "fgcs/testkit/scenario.hpp"

#include <sstream>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::testkit {

namespace {

/// "SCNR": root tag of every scenario-generation substream.
constexpr std::uint64_t kScenarioTag = 0x5343'4E52;

/// Substream ids — one per independent scenario dimension.
enum Dimension : std::uint64_t {
  kFleet = 1,
  kPolicy = 2,
  kFaults = 3,
  kLifecycle = 4,
};

sim::SimDuration minutes_of(double m) {
  return sim::SimDuration::from_seconds(m * 60.0);
}

sim::SimDuration hours_of(double h) {
  return sim::SimDuration::from_seconds(h * 3600.0);
}

fault::FaultSpec generate_fault_spec(util::RngStream& rng,
                                     std::uint32_t machines, int days) {
  fault::FaultSpec spec;
  spec.kind = static_cast<fault::FaultKind>(
      rng.uniform_index(fault::kFaultKindCount));
  spec.machine = rng.bernoulli(0.5)
                     ? fault::kAllMachines
                     : static_cast<std::int64_t>(rng.uniform_index(machines));
  spec.mean_minutes = rng.uniform(0.5, 30.0);
  if (rng.bernoulli(0.35)) {
    // Scripted occurrences at exact offsets inside the horizon.
    const std::size_t n = 1 + rng.uniform_index(3);
    const double horizon_h = static_cast<double>(days) * 24.0;
    for (std::size_t i = 0; i < n; ++i) {
      spec.at_hours.push_back(rng.uniform(0.0, horizon_h));
    }
    if (rng.bernoulli(0.5)) spec.duration_minutes = rng.uniform(0.5, 20.0);
  } else {
    spec.rate_per_day = rng.uniform(0.2, 4.0);
  }
  if (spec.kind == fault::FaultKind::kClockSkew) {
    spec.skew_ms = rng.uniform(-500.0, 500.0);
  }
  return spec;
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;

  util::RngStream fleet(seed, {kScenarioTag, kFleet});
  s.testbed.machines = static_cast<std::uint32_t>(1 + fleet.uniform_index(4));
  s.testbed.days = static_cast<int>(2 + fleet.uniform_index(5));
  s.testbed.start_dow =
      static_cast<trace::DayOfWeek>(fleet.uniform_index(7));
  s.testbed.seed = fleet.next_u64();

  util::RngStream policy(seed, {kScenarioTag, kPolicy});
  static constexpr std::int64_t kPeriodsSeconds[] = {5, 15, 30, 60};
  s.testbed.policy.sample_period =
      sim::SimDuration::seconds(kPeriodsSeconds[policy.uniform_index(4)]);
  s.testbed.policy.th1 = policy.uniform(0.10, 0.30);
  s.testbed.policy.th2 = policy.uniform(0.50, 0.80);
  s.testbed.policy.sustain_window =
      sim::SimDuration::seconds(policy.uniform_int(30, 120));
  s.testbed.policy.guest_working_set_mb = policy.uniform(100.0, 300.0);

  util::RngStream faults(seed, {kScenarioTag, kFaults});
  const std::size_t spec_count = faults.uniform_index(5);  // 0..4
  for (std::size_t i = 0; i < spec_count; ++i) {
    s.testbed.faults.specs.push_back(
        generate_fault_spec(faults, s.testbed.machines, s.testbed.days));
  }

  util::RngStream lc(seed, {kScenarioTag, kLifecycle});
  s.run_lifecycle = lc.bernoulli(0.6);
  s.lifecycle.job_length = hours_of(lc.uniform(0.5, 8.0));
  s.lifecycle.submit_spacing = hours_of(lc.uniform(2.0, 12.0));
  s.lifecycle.checkpoint_interval =
      lc.bernoulli(0.5) ? sim::SimDuration::zero()
                        : minutes_of(lc.uniform(20.0, 120.0));
  s.lifecycle.checkpoint_cost = minutes_of(lc.uniform(0.0, 3.0));
  s.lifecycle.backoff_initial = minutes_of(lc.uniform(0.5, 2.0));
  s.lifecycle.backoff_cap = minutes_of(lc.uniform(10.0, 45.0));
  s.lifecycle.backoff_factor = lc.uniform(1.5, 3.0);
  s.lifecycle.backoff_jitter = lc.uniform(0.0, 0.4);
  s.lifecycle.migrate_on_revocation = lc.bernoulli(0.5);
  s.lifecycle.seed = lc.next_u64();

  s.testbed.validate();
  s.lifecycle.validate();
  return s;
}

std::string Scenario::str() const {
  std::ostringstream out;
  out << "scenario{seed=0x" << std::hex << seed << std::dec
      << " machines=" << testbed.machines << " days=" << testbed.days
      << " sample_period=" << testbed.policy.sample_period.str()
      << " fault_specs=" << testbed.faults.size();
  if (run_lifecycle) {
    out << " lifecycle{job=" << lifecycle.job_length.str()
        << " ckpt=" << lifecycle.checkpoint_interval.str()
        << (lifecycle.migrate_on_revocation ? " migrate" : "") << "}";
  }
  out << "}";
  return out.str();
}

ScenarioOutcome run_scenario(const Scenario& s) {
  ScenarioOutcome out;
  const sim::SimTime start = sim::SimTime::epoch();
  const sim::SimTime end = start + sim::SimDuration::days(s.testbed.days);
  out.trace = trace::TraceSet(s.testbed.machines, start, end);
  out.machines.reserve(s.testbed.machines);
  for (std::uint32_t m = 0; m < s.testbed.machines; ++m) {
    auto detail = core::run_testbed_machine_detailed(s.testbed, m);
    for (const auto& rec : detail.records) out.trace.add(rec);
    out.machines.push_back(
        MachineOutcome{std::move(detail.records), std::move(detail.timeline)});
  }
  if (s.run_lifecycle) {
    out.lifecycle_ran = true;
    out.guests = core::run_guest_study(s.testbed, out.trace, s.lifecycle);
  }
  return out;
}

ScenarioOutcome run_scenario_recorded(const Scenario& s,
                                      std::size_t flight_capacity) {
  obs::FlightRecorder::Options options;
  options.capacity = flight_capacity;
  // No dump_path: the capture stays in memory for the caller to audit
  // (or render via obs::format_flight_event).
  obs::FlightRecorder flight(options);
  obs::Observer observer;
  observer.set_flight_recorder(&flight);  // attach before installing
  ScenarioOutcome out;
  {
    // run_scenario drives machines serially on this thread, so a scoped
    // global observer sees exactly this scenario's hooks.
    const obs::ScopedObserver guard(&observer);
    out = run_scenario(s);
  }
  out.flight_recorded = true;
  out.flight = flight.events();
  out.flight_dropped = flight.dropped();
  return out;
}

}  // namespace fgcs::testkit

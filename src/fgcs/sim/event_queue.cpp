#include "fgcs/sim/event_queue.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"

namespace fgcs::sim {

namespace detail {

std::uint32_t SlotTable::acquire(EventCallback cb) {
  std::uint32_t id;
  if (free_head != kNoSlot) {
    id = free_head;
    EventSlot& s = slots[id];
    free_head = s.next_free;
    s.next_free = kNoSlot;
    ++s.gen;  // invalidate handles to the previous occupant
    s.state = EventSlot::State::kLive;
    s.cb = std::move(cb);
  } else {
    id = static_cast<std::uint32_t>(slots.size());
    EventSlot& s = slots.emplace_back();
    s.gen = 1;
    s.state = EventSlot::State::kLive;
    s.cb = std::move(cb);
  }
  ++live;
  if (live > stats.max_live) stats.max_live = live;
  return id;
}

bool SlotTable::cancel(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots.size()) return false;
  EventSlot& s = slots[slot];
  if (s.gen != gen || s.state != EventSlot::State::kLive) return false;
  s.state = EventSlot::State::kCancelled;
  s.cb.reset();  // free captured state eagerly, not at heap pop
  --live;
  ++cancelled_pending;
  return true;
}

bool SlotTable::is_live(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slots.size()) return false;
  const EventSlot& s = slots[slot];
  return s.gen == gen && s.state == EventSlot::State::kLive;
}

bool SlotTable::is_cancelled(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slots.size()) return false;
  const EventSlot& s = slots[slot];
  if (s.gen != gen) return false;  // recycled: fate unknown, report false
  if (s.state == EventSlot::State::kCancelled) return true;
  return s.state == EventSlot::State::kFree && s.last_cancelled;
}

void SlotTable::release(std::uint32_t slot, bool was_cancelled) {
  EventSlot& s = slots[slot];
  FGCS_ASSERT(s.state != EventSlot::State::kFree);
  if (s.state == EventSlot::State::kCancelled) {
    FGCS_ASSERT(cancelled_pending > 0);
    --cancelled_pending;
  } else {
    s.cb.reset();
    FGCS_ASSERT(live > 0);
    --live;
  }
  s.state = EventSlot::State::kFree;
  s.last_cancelled = was_cancelled;
  s.next_free = free_head;
  free_head = slot;
}

}  // namespace detail

bool EventHandle::cancel() {
  if (flag_ != nullptr) {
    const bool first = !*flag_;
    *flag_ = true;
    return first;
  }
  if (slots_ && slots_->cancel(slot_, gen_)) {
    ++slots_->stats.cancelled;
    return true;
  }
  return false;
}

bool EventHandle::cancelled() const {
  if (flag_ != nullptr) return *flag_;
  return slots_ && slots_->is_cancelled(slot_, gen_);
}

void EventQueue::sift_up(std::size_t i) const {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) const {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::remove_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

EventHandle EventQueue::schedule(SimTime when, Callback cb) {
  FGCS_ASSERT(cb);
  ++slots_->stats.scheduled;
  if (!cb.is_inline()) ++slots_->stats.spilled;
  const std::uint32_t slot = slots_->acquire(std::move(cb));
  const std::uint32_t gen = slots_->slots[slot].gen;
  heap_.push_back(Entry{when, next_seq_++, slot, gen});
  sift_up(heap_.size() - 1);
  maybe_compact();
  return EventHandle(slots_, slot, gen);
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    const Entry dead = heap_.front();
    remove_top();
    // Only cancelled (or cleared) entries can be dead while still in the
    // heap; fired entries leave the heap at pop time.
    slots_->release(dead.slot, /*was_cancelled=*/true);
  }
}

// Compaction: when cancelled entries outnumber live ones (beyond a small
// floor), filter them out in one O(n) pass and re-heapify. This bounds
// heap growth to 2x the live event count no matter how many events a
// workload cancels.
void EventQueue::maybe_compact() {
  const std::size_t cancelled = slots_->cancelled_pending;
  if (cancelled < 64 || cancelled * 2 < heap_.size()) return;
  std::size_t removed = 0;
  auto keep = heap_.begin();
  for (auto& e : heap_) {
    if (entry_live(e)) {
      *keep++ = e;
    } else {
      slots_->release(e.slot, /*was_cancelled=*/true);
      ++removed;
    }
  }
  heap_.erase(keep, heap_.end());
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
  ++slots_->stats.compactions;
  slots_->stats.compacted += removed;
}

SimTime EventQueue::next_time() const {
  drop_dead();
  if (heap_.empty()) return SimTime::max();
  return heap_.front().when;
}

SimTime EventQueue::run_next(SimTime* clock) {
  drop_dead();
  FGCS_ASSERT(!heap_.empty());
  const Entry top = heap_.front();
  if (clock != nullptr) *clock = top.when;
  remove_top();
  // Move the callback out before invoking: the callback may schedule new
  // events, which can grow the slot table and recycle this slot.
  Callback cb = std::move(slots_->slots[top.slot].cb);
  slots_->release(top.slot, /*was_cancelled=*/false);
  cb();
  return top.when;
}

void EventQueue::clear() {
  for (const auto& e : heap_) {
    const auto state = slots_->slots[e.slot].state;
    if (state == detail::EventSlot::State::kLive) {
      // Dropped, not cancelled-by-handle: handles report cancelled()==false.
      slots_->release(e.slot, /*was_cancelled=*/false);
    } else if (state == detail::EventSlot::State::kCancelled) {
      slots_->release(e.slot, /*was_cancelled=*/true);
    }
  }
  heap_.clear();
}

}  // namespace fgcs::sim

#include "fgcs/sim/event_queue.hpp"

#include "fgcs/util/error.hpp"

namespace fgcs::sim {

EventHandle EventQueue::schedule(SimTime when, Callback cb) {
  FGCS_ASSERT(cb != nullptr);
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{when, next_seq_++, std::move(cb), flag});
  return EventHandle(std::move(flag));
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) return SimTime::max();
  return heap_.top().when;
}

SimTime EventQueue::run_next() {
  drop_cancelled();
  FGCS_ASSERT(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback (callbacks are small closures in practice).
  Entry entry = heap_.top();
  heap_.pop();
  entry.cb();
  return entry.when;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace fgcs::sim

#include "fgcs/sim/time.hpp"

#include <cstdio>
#include <cstdlib>

namespace fgcs::sim {

std::string SimDuration::str() const {
  char buf[64];
  const std::int64_t abs_us = us_ < 0 ? -us_ : us_;
  const char* sign = us_ < 0 ? "-" : "";
  if (abs_us >= 3'600'000'000LL) {
    std::snprintf(buf, sizeof buf, "%s%lldh %02lldm", sign,
                  static_cast<long long>(abs_us / 3'600'000'000LL),
                  static_cast<long long>((abs_us / 60'000'000LL) % 60));
  } else if (abs_us >= 60'000'000LL) {
    std::snprintf(buf, sizeof buf, "%s%lldm %02llds", sign,
                  static_cast<long long>(abs_us / 60'000'000LL),
                  static_cast<long long>((abs_us / 1'000'000LL) % 60));
  } else if (abs_us >= 1'000'000LL) {
    std::snprintf(buf, sizeof buf, "%s%.3fs", sign,
                  static_cast<double>(abs_us) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%s%.3fms", sign,
                  static_cast<double>(abs_us) / 1e3);
  }
  return buf;
}

std::string SimTime::str() const {
  // Render as d+hh:mm:ss.mmm relative to the simulation epoch.
  char buf[64];
  const std::int64_t total_s = us_ / 1'000'000LL;
  std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(total_s / 86'400),
                static_cast<long long>((total_s / 3'600) % 24),
                static_cast<long long>((total_s / 60) % 60),
                static_cast<long long>(total_s % 60),
                static_cast<long long>((us_ / 1'000) % 1'000));
  return buf;
}

}  // namespace fgcs::sim

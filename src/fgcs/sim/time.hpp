// Strongly-typed simulated time.
//
// SimTime is an absolute instant, SimDuration a signed span; both count
// integer microseconds so event ordering is exact and platform-independent.
// Conversions from floating-point seconds round to the nearest microsecond.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace fgcs::sim {

/// A signed span of simulated time, microsecond resolution.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration micros(std::int64_t us) {
    return SimDuration(us);
  }
  static constexpr SimDuration millis(std::int64_t ms) {
    return SimDuration(ms * 1000);
  }
  static constexpr SimDuration seconds(std::int64_t s) {
    return SimDuration(s * 1'000'000);
  }
  static constexpr SimDuration minutes(std::int64_t m) {
    return seconds(m * 60);
  }
  static constexpr SimDuration hours(std::int64_t h) { return seconds(h * 3600); }
  static constexpr SimDuration days(std::int64_t d) { return hours(d * 24); }

  /// From floating-point seconds (rounded to nearest microsecond).
  static SimDuration from_seconds(double s) {
    return SimDuration(static_cast<std::int64_t>(std::llround(s * 1e6)));
  }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  constexpr double as_minutes() const { return as_seconds() / 60.0; }
  constexpr double as_hours() const { return as_seconds() / 3600.0; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(us_ + o.us_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(us_ - o.us_);
  }
  constexpr SimDuration operator-() const { return SimDuration(-us_); }
  constexpr SimDuration operator*(std::int64_t k) const {
    return SimDuration(us_ * k);
  }
  constexpr SimDuration operator*(int k) const {
    return SimDuration(us_ * k);
  }
  SimDuration operator*(double k) const { return from_seconds(as_seconds() * k); }
  constexpr SimDuration operator/(std::int64_t k) const {
    return SimDuration(us_ / k);
  }
  constexpr double operator/(SimDuration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    us_ -= o.us_;
    return *this;
  }

  static constexpr SimDuration zero() { return SimDuration(0); }
  static constexpr SimDuration max() {
    return SimDuration(INT64_MAX);
  }

  /// "2h 03m", "5m 12s", "3.2s", "250ms" style rendering.
  std::string str() const;

 private:
  explicit constexpr SimDuration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute simulated instant (microseconds since simulation epoch).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime epoch() { return SimTime(0); }
  static constexpr SimTime from_micros(std::int64_t us) { return SimTime(us); }
  static SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(std::llround(s * 1e6)));
  }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  constexpr double as_hours() const { return as_seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(us_ + d.as_micros());
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime(us_ - d.as_micros());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::micros(us_ - o.us_);
  }
  SimTime& operator+=(SimDuration d) {
    us_ += d.as_micros();
    return *this;
  }

  std::string str() const;

 private:
  explicit constexpr SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

namespace time_literals {
constexpr SimDuration operator""_us(unsigned long long v) {
  return SimDuration::micros(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_ms(unsigned long long v) {
  return SimDuration::millis(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_s(unsigned long long v) {
  return SimDuration::seconds(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_min(unsigned long long v) {
  return SimDuration::minutes(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_h(unsigned long long v) {
  return SimDuration::hours(static_cast<std::int64_t>(v));
}
}  // namespace time_literals

}  // namespace fgcs::sim

// Discrete-event queue with stable ordering and allocation-free hot path.
//
// Events at equal timestamps fire in insertion order (sequence-number
// tiebreak) so simulations are fully deterministic.
//
// Design (the sim-core fast path):
//   * Callbacks are InlineFunction<void(), 48>: captures up to 48 bytes
//     live inside the callback object — scheduling never allocates for
//     the closures the simulation actually uses.
//   * Callbacks are stored in a slot table, not in the heap: heap entries
//     are 24-byte PODs (time, seq, slot id, generation), so sift
//     operations move almost nothing.
//   * Cancellation is a generation check: an EventHandle names a (slot,
//     generation) pair; cancelling bumps the slot out of the live state
//     and releases the callback (and its captured state) immediately.
//     Cancelled heap entries are skipped on pop, and a compaction pass
//     rebuilds the heap when they pile up, so they cannot accumulate
//     unbounded.
//   * Slots are recycled through a free list: after warm-up the queue
//     performs zero steady-state allocations per scheduled event.
//
// The queue is single-threaded, like the Simulation that owns it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fgcs/sim/time.hpp"
#include "fgcs/util/inline_function.hpp"

namespace fgcs::sim {

/// The event-callback currency: inline storage for captures <= 48 bytes,
/// one heap allocation beyond that (counted by the observability layer).
using EventCallback = util::InlineFunction<void(), 48>;

/// Scheduling statistics, accumulated by the queue as plain increments
/// and drained at run boundaries (see Simulation::run_until/run_all).
/// Always on: a non-atomic increment on an already-hot struct is cheaper
/// than the observer load + hook call per scheduling action it replaces.
struct SimEventStats {
  std::uint64_t scheduled = 0;
  std::uint64_t spilled = 0;    // callbacks too big for inline storage
  std::uint64_t cancelled = 0;  // live events cancelled through handles
  std::uint64_t compactions = 0;
  std::uint64_t compacted = 0;  // cancelled entries removed by compaction
  std::uint64_t max_live = 0;   // peak pending events since the last drain
};

namespace detail {

inline constexpr std::uint32_t kNoSlot = 0xffff'ffffu;

/// One callback slot. `gen` identifies the occupant: a handle whose
/// generation no longer matches refers to a dead (fired/cancelled) event.
struct EventSlot {
  EventCallback cb;
  std::uint32_t gen = 0;
  std::uint32_t next_free = kNoSlot;
  enum class State : std::uint8_t { kFree, kLive, kCancelled };
  State state = State::kFree;
  /// Fate of the most recent occupant once freed (true = cancelled), so
  /// handles can answer cancelled() until the slot is recycled.
  bool last_cancelled = false;
};

/// Slot storage, shared between the queue and its handles so a handle
/// outliving the queue stays safe to query and cancel (a no-op by then).
/// Reference-counted non-atomically: the queue and its handles are
/// single-threaded by contract, and scheduling constructs one handle per
/// event — an atomic refcount would be pure hot-path overhead.
struct SlotTable {
  std::vector<EventSlot> slots;
  std::uint32_t free_head = kNoSlot;
  /// Live (scheduled, uncancelled, unfired) events.
  std::size_t live = 0;
  /// Cancelled entries still sitting in the owning queue's heap.
  std::size_t cancelled_pending = 0;
  /// Intrusive refcount (queue + outstanding handles).
  std::uint32_t refs = 1;
  /// Lives here rather than in the queue so EventHandle::cancel() (which
  /// only holds the table) can count too.
  SimEventStats stats;

  std::uint32_t acquire(EventCallback cb);
  /// Cancels (slot, gen) if it is still live; releases the callback and
  /// its captured state immediately. Returns true if this call cancelled.
  bool cancel(std::uint32_t slot, std::uint32_t gen);
  bool is_live(std::uint32_t slot, std::uint32_t gen) const;
  bool is_cancelled(std::uint32_t slot, std::uint32_t gen) const;
  /// Returns the slot to the free list. `was_cancelled` records the fate.
  void release(std::uint32_t slot, bool was_cancelled);
};

/// Single-threaded intrusive smart pointer for SlotTable.
class SlotTableRef {
 public:
  SlotTableRef() = default;
  static SlotTableRef make() { return SlotTableRef(new SlotTable()); }
  SlotTableRef(const SlotTableRef& o) : t_(o.t_) {
    if (t_ != nullptr) ++t_->refs;
  }
  SlotTableRef(SlotTableRef&& o) noexcept : t_(o.t_) { o.t_ = nullptr; }
  SlotTableRef& operator=(const SlotTableRef& o) {
    if (this != &o) {
      drop();
      t_ = o.t_;
      if (t_ != nullptr) ++t_->refs;
    }
    return *this;
  }
  SlotTableRef& operator=(SlotTableRef&& o) noexcept {
    if (this != &o) {
      drop();
      t_ = o.t_;
      o.t_ = nullptr;
    }
    return *this;
  }
  ~SlotTableRef() { drop(); }

  SlotTable* operator->() const { return t_; }
  SlotTable* get() const { return t_; }
  explicit operator bool() const { return t_ != nullptr; }

 private:
  explicit SlotTableRef(SlotTable* t) : t_(t) {}
  void drop() {
    if (t_ != nullptr && --t_->refs == 0) delete t_;
    t_ = nullptr;
  }
  SlotTable* t_ = nullptr;
};

}  // namespace detail

/// Handle for cancelling a scheduled event. Default-constructed handles
/// are inert. Copies share the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet; the callback and its
  /// captured state are destroyed immediately. Idempotent: calling it on
  /// an already-fired, already-cancelled, or inert handle is a no-op.
  /// Returns true iff THIS call cancelled a live event (so callers can
  /// tell "I stopped it" from "it was already dead"), and the obs
  /// cancel counter bumps only for those calls.
  bool cancel();

  /// True if the handle refers to a scheduled (possibly fired) event.
  bool valid() const {
    return static_cast<bool>(slots_) || flag_ != nullptr;
  }

  /// True if cancel() was called before the event fired. Accurate until
  /// the event's slot is recycled by a later schedule; a recycled slot
  /// reports false (the event is long gone either way).
  bool cancelled() const;

 private:
  friend class EventQueue;
  friend class Simulation;
  EventHandle(detail::SlotTableRef slots, std::uint32_t slot,
              std::uint32_t gen)
      : slots_(std::move(slots)), slot_(slot), gen_(gen) {}
  /// Flag-mode handle: controls a periodic series (Simulation::every).
  explicit EventHandle(std::shared_ptr<bool> flag) : flag_(std::move(flag)) {}

  detail::SlotTableRef slots_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
  std::shared_ptr<bool> flag_;
};

/// Priority queue of (time, callback) pairs.
class EventQueue {
 public:
  using Callback = EventCallback;

  EventQueue() = default;
  ~EventQueue() { clear(); }

  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute time `when`. Returns a cancellation handle.
  EventHandle schedule(SimTime when, Callback cb);

  /// True when no live (uncancelled) events remain.
  bool empty() const { return slots_->live == 0; }

  /// Number of pending heap entries. Cancelled events that have not yet
  /// been garbage-collected are counted, so this is a raw *upper bound*
  /// on live events; use live_size() for the exact live count.
  std::size_t size() const { return heap_.size(); }

  /// Exact number of live (uncancelled, unfired) events.
  std::size_t live_size() const { return slots_->live; }

  /// Scheduling statistics accumulated since construction or the last
  /// drain_stats() call.
  const SimEventStats& stats() const { return slots_->stats; }

  /// Returns and resets the accumulated statistics — how the owning
  /// Simulation forwards them to the observer once per run. Events still
  /// pending at the drain keep counting toward the next window's
  /// high-water mark.
  SimEventStats drain_stats() {
    const SimEventStats out = slots_->stats;
    slots_->stats = SimEventStats{};
    slots_->stats.max_live = slots_->live;
    return out;
  }

  /// Timestamp of the earliest live event; SimTime::max() when empty.
  SimTime next_time() const;

  /// Pops and runs the earliest live event; returns its time. When
  /// `clock` is non-null the event time is stored through it *before*
  /// the callback runs, so callbacks observe the event's own timestamp.
  /// Precondition: !empty().
  SimTime run_next(SimTime* clock = nullptr);

  /// Drops every pending event, releasing all callbacks immediately.
  void clear();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  bool entry_live(const Entry& e) const {
    return slots_->is_live(e.slot, e.gen);
  }
  // Hand-rolled 4-ary min-heap on (when, seq): half the depth of a binary
  // heap and better cache behavior on the 24-byte entries, which is worth
  // ~20% event throughput over std::push_heap/std::pop_heap.
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  /// Removes the heap top (front = back, pop, sift down).
  void remove_top() const;
  /// Pops dead entries off the heap top.
  void drop_dead() const;
  /// Rebuilds the heap without cancelled entries once they dominate.
  void maybe_compact();

  mutable std::vector<Entry> heap_;
  detail::SlotTableRef slots_ = detail::SlotTableRef::make();
  std::uint64_t next_seq_ = 0;
};

}  // namespace fgcs::sim

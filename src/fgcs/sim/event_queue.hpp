// Discrete-event queue with stable ordering and O(log n) cancellation.
//
// Events at equal timestamps fire in insertion order (sequence-number
// tiebreak) so simulations are fully deterministic. Cancellation is lazy:
// a cancelled entry stays in the heap and is skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "fgcs/sim/time.hpp"

namespace fgcs::sim {

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert. Copies share the same cancellation flag.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  /// True if the handle refers to a scheduled (possibly fired) event.
  bool valid() const { return static_cast<bool>(cancelled_); }

  /// True if cancel() was called before the event fired.
  bool cancelled() const { return cancelled_ && *cancelled_; }

 private:
  friend class EventQueue;
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Priority queue of (time, callback) pairs.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when`. Returns a cancellation handle.
  EventHandle schedule(SimTime when, Callback cb);

  /// True when no live (uncancelled) events remain.
  bool empty() const {
    drop_cancelled();
    return heap_.empty();
  }

  /// Number of pending entries. Cancelled events that have not yet been
  /// garbage-collected are counted, so this is an upper bound on live events.
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest live event; SimTime::max() when empty.
  SimTime next_time() const;

  /// Pops and runs the earliest live event; returns its time.
  /// Precondition: !empty().
  SimTime run_next();

  /// Drops every pending event.
  void clear();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fgcs::sim

#include "fgcs/sim/simulation.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::sim {

EventHandle Simulation::at(SimTime when, EventQueue::Callback cb) {
  FGCS_ASSERT(when >= now_);
  return queue_.schedule(when, std::move(cb));
}

EventHandle Simulation::after(SimDuration delay, EventQueue::Callback cb) {
  FGCS_ASSERT(delay >= SimDuration::zero());
  return queue_.schedule(now_ + delay, std::move(cb));
}

// Periodic tasks share one cancellation flag across all firings: `every`
// returns a handle over that flag, and each firing re-schedules a fresh
// closure holding the shared state. No closure references itself, so the
// chain is freed as soon as the series is cancelled or the queue drains.
// The rescheduling closure captures only (this, shared state) — well
// inside the inline-callback buffer, so firings never allocate.
struct Simulation::PeriodicState {
  EventQueue::Callback task;
  SimDuration period;
  std::shared_ptr<bool> cancelled;
};

void Simulation::fire_periodic(const std::shared_ptr<PeriodicState>& state) {
  if (*state->cancelled) return;
  state->task();
  if (*state->cancelled) return;  // the task may cancel the series
  queue_.schedule(now_ + state->period,
                  [this, state] { fire_periodic(state); });
}

EventHandle Simulation::every(SimDuration period, EventQueue::Callback task) {
  FGCS_ASSERT(period > SimDuration::zero());
  auto state = std::make_shared<PeriodicState>();
  state->task = std::move(task);
  state->period = period;
  state->cancelled = std::make_shared<bool>(false);
  queue_.schedule(now_ + period, [this, state] { fire_periodic(state); });
  return EventHandle(state->cancelled);
}

// The observer is sampled once per run, not per event: installation
// mid-run is not a supported pattern, and sampling it once per run keeps
// the event loop itself free of observer work — the queue's plain stats
// (including the live high-water mark) carry everything the flush needs.
void Simulation::run_until(SimTime until) {
  stop_requested_ = false;
  obs::Observer* const o = obs::observer();
  const SimTime begin = now_;
  const std::uint64_t events_before = events_executed_;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.next_time();
    if (next > until) break;
    now_ = next;
    queue_.run_next();
    ++events_executed_;
  }
  if (now_ < until) now_ = until;
  if (o != nullptr) {
    flush_obs(o, "run_until", begin, events_executed_ - events_before);
  }
}

void Simulation::run_all() {
  stop_requested_ = false;
  obs::Observer* const o = obs::observer();
  const SimTime begin = now_;
  const std::uint64_t events_before = events_executed_;
  while (!queue_.empty() && !stop_requested_) {
    // run_next advances the clock before firing — no separate peek needed.
    queue_.run_next(&now_);
    ++events_executed_;
  }
  if (o != nullptr) {
    flush_obs(o, "run_all", begin, events_executed_ - events_before);
  }
}

// One observer update per run: per-event costs stay in plain queue
// counters, so enabling telemetry adds no work at all to the event loop.
void Simulation::flush_obs(obs::Observer* o, const char* what, SimTime begin,
                           std::uint64_t events) {
  const SimEventStats stats = queue_.drain_stats();
  // Depth is the queue's peak pending-event count over the run — the
  // executing event is not counted (unlike on_sim_event's convention).
  o->on_sim_batch(events, static_cast<double>(stats.max_live),
                  stats.scheduled, stats.spilled, stats.cancelled,
                  stats.compactions, stats.compacted);
  if (events > 0) o->on_sim_run(what, begin, now_, events);
}

}  // namespace fgcs::sim

#include "fgcs/sim/simulation.hpp"

#include <memory>
#include <utility>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::sim {

EventHandle Simulation::at(SimTime when, EventQueue::Callback cb) {
  FGCS_ASSERT(when >= now_);
  return queue_.schedule(when, std::move(cb));
}

EventHandle Simulation::after(SimDuration delay, EventQueue::Callback cb) {
  FGCS_ASSERT(delay >= SimDuration::zero());
  return queue_.schedule(now_ + delay, std::move(cb));
}

// Periodic tasks share one cancellation flag across all firings: `every`
// returns a handle over that flag, and each firing re-schedules a fresh
// closure holding the shared state. No closure references itself, so the
// chain is freed as soon as the series is cancelled or the queue drains.
// The rescheduling closure captures only (this, shared state) — well
// inside the inline-callback buffer, so firings never allocate.
struct Simulation::PeriodicState {
  EventQueue::Callback task;
  SimDuration period;
  std::shared_ptr<bool> cancelled;
};

void Simulation::fire_periodic(const std::shared_ptr<PeriodicState>& state) {
  if (*state->cancelled) return;
  state->task();
  if (*state->cancelled) return;  // the task may cancel the series
  queue_.schedule(now_ + state->period,
                  [this, state] { fire_periodic(state); });
}

EventHandle Simulation::every(SimDuration period, EventQueue::Callback task) {
  FGCS_ASSERT(period > SimDuration::zero());
  auto state = std::make_shared<PeriodicState>();
  state->task = std::move(task);
  state->period = period;
  state->cancelled = std::make_shared<bool>(false);
  queue_.schedule(now_ + period, [this, state] { fire_periodic(state); });
  return EventHandle(state->cancelled);
}

// The observer is sampled once per run, not per event: installation
// mid-run is not a supported pattern, and the single load keeps the
// disabled-path overhead to one branch per executed event.
void Simulation::run_until(SimTime until) {
  stop_requested_ = false;
  obs::Observer* const o = obs::observer();
  const SimTime begin = now_;
  const std::uint64_t events_before = events_executed_;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.next_time();
    if (next > until) break;
    now_ = next;
    queue_.run_next();
    ++events_executed_;
    if (o != nullptr) o->on_sim_event(queue_.live_size());
  }
  if (now_ < until) now_ = until;
  if (o != nullptr && events_executed_ > events_before) {
    o->on_sim_run("run_until", begin, now_, events_executed_ - events_before);
  }
}

void Simulation::run_all() {
  stop_requested_ = false;
  obs::Observer* const o = obs::observer();
  const SimTime begin = now_;
  const std::uint64_t events_before = events_executed_;
  while (!queue_.empty() && !stop_requested_) {
    // run_next advances the clock before firing — no separate peek needed.
    queue_.run_next(&now_);
    ++events_executed_;
    if (o != nullptr) o->on_sim_event(queue_.live_size());
  }
  if (o != nullptr && events_executed_ > events_before) {
    o->on_sim_run("run_all", begin, now_, events_executed_ - events_before);
  }
}

}  // namespace fgcs::sim

// Simulation driver: owns the clock and the event queue.
//
// A Simulation advances time only through event execution — there is no
// wall-clock coupling. Components schedule callbacks at absolute times or
// after relative delays, and may install periodic tasks (used by the
// resource monitor's sampler).
#pragma once

#include <memory>

#include "fgcs/sim/event_queue.hpp"
#include "fgcs/sim/time.hpp"

namespace fgcs::obs {
class Observer;
}  // namespace fgcs::obs

namespace fgcs::sim {

class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at the absolute instant `when` (must be >= now()).
  EventHandle at(SimTime when, EventQueue::Callback cb);

  /// Schedules `cb` after `delay` (must be >= 0).
  EventHandle after(SimDuration delay, EventQueue::Callback cb);

  /// Installs a periodic task firing every `period`, first at now()+period.
  /// The task keeps rescheduling itself until its handle is cancelled or
  /// the simulation stops. Returns a handle controlling the whole series.
  /// One allocation per series; the per-firing reschedule is allocation-free.
  EventHandle every(SimDuration period, EventQueue::Callback task);

  /// Runs events until the queue is empty or `until` is passed. The clock
  /// finishes at min(until, last event time). Events exactly at `until`
  /// are executed.
  void run_until(SimTime until);

  /// Runs events until the queue drains completely.
  void run_all();

  /// Requests that run_until/run_all return after the current event.
  void stop() { stop_requested_ = true; }

  /// Number of events executed so far (for tests/benchmarks).
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct PeriodicState;
  void fire_periodic(const std::shared_ptr<PeriodicState>& state);
  /// Drains the queue's scheduling stats and reports one observer batch
  /// (plus the run's trace span) — the only observer touch per run.
  void flush_obs(obs::Observer* o, const char* what, SimTime begin,
                 std::uint64_t events);

  EventQueue queue_;
  SimTime now_ = SimTime::epoch();
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace fgcs::sim

#include "fgcs/trace/calendar.hpp"

#include <cstdio>

#include "fgcs/util/error.hpp"

namespace fgcs::trace {

const char* to_string(DayOfWeek d) {
  switch (d) {
    case DayOfWeek::kMonday:
      return "Mon";
    case DayOfWeek::kTuesday:
      return "Tue";
    case DayOfWeek::kWednesday:
      return "Wed";
    case DayOfWeek::kThursday:
      return "Thu";
    case DayOfWeek::kFriday:
      return "Fri";
    case DayOfWeek::kSaturday:
      return "Sat";
    case DayOfWeek::kSunday:
      return "Sun";
  }
  return "?";
}

int TraceCalendar::day_index(sim::SimTime t) const {
  const std::int64_t us = t.as_micros();
  if (us <= 0) return 0;
  return static_cast<int>(us / sim::SimDuration::days(1).as_micros());
}

int TraceCalendar::hour_of_day(sim::SimTime t) const {
  const std::int64_t us = t.as_micros();
  const std::int64_t day_us = sim::SimDuration::days(1).as_micros();
  const std::int64_t within = ((us % day_us) + day_us) % day_us;
  return static_cast<int>(within / sim::SimDuration::hours(1).as_micros());
}

DayOfWeek TraceCalendar::day_of_week_for_day(int day_index) const {
  return static_cast<DayOfWeek>(((start_dow_ + day_index) % 7 + 7) % 7);
}

DayOfWeek TraceCalendar::day_of_week(sim::SimTime t) const {
  return day_of_week_for_day(day_index(t));
}

bool TraceCalendar::is_weekend_day(int day_index) const {
  return static_cast<int>(day_of_week_for_day(day_index)) >= 5;
}

bool TraceCalendar::is_weekend(sim::SimTime t) const {
  return is_weekend_day(day_index(t));
}

sim::SimTime TraceCalendar::day_start(int day_index) const {
  return sim::SimTime::epoch() + sim::SimDuration::days(day_index);
}

std::string TraceCalendar::label(sim::SimTime t) const {
  char buf[64];
  const int day = day_index(t);
  const std::int64_t s = t.as_micros() / 1'000'000;
  std::snprintf(buf, sizeof buf, "day %d (%s) %02d:%02d", day,
                to_string(day_of_week_for_day(day)),
                static_cast<int>((s / 3600) % 24),
                static_cast<int>((s / 60) % 60));
  return buf;
}

}  // namespace fgcs::trace

#include "fgcs/trace/trace_set.hpp"

#include <algorithm>
#include <compare>

#include "fgcs/util/error.hpp"

namespace fgcs::trace {

TraceSet::TraceSet(std::uint32_t machines, sim::SimTime horizon_start,
                   sim::SimTime horizon_end)
    : machines_(machines), start_(horizon_start), end_(horizon_end) {
  fgcs::require(machines > 0, "TraceSet needs at least one machine");
  fgcs::require(horizon_end > horizon_start,
                "TraceSet horizon must be non-empty");
}

// Total order over every field: (machine, start) alone leaves ties to
// std::sort's whims, so two TraceSets holding the same records inserted
// in different orders could disagree on records() order. strong_order
// keeps the double comparisons a valid strict weak order even if a
// salvaged trace smuggles in a NaN.
bool TraceSet::canonical_less(const UnavailabilityRecord& a,
                              const UnavailabilityRecord& b) {
  if (a.machine != b.machine) return a.machine < b.machine;
  if (a.start != b.start) return a.start < b.start;
  if (a.end != b.end) return a.end < b.end;
  if (a.cause != b.cause) return a.cause < b.cause;
  if (auto c = std::strong_order(a.host_cpu, b.host_cpu); c != 0) {
    return c < 0;
  }
  return std::strong_order(a.free_mem_mb, b.free_mem_mb) < 0;
}

void TraceSet::add(UnavailabilityRecord record) {
  fgcs::require(record.machine < machines_,
                "record machine id out of range");
  fgcs::require(record.end >= record.start, "record end before start");
  // An append that respects the canonical order keeps the set sorted, so
  // streaming inserts (testbed sweeps, spill readers) never pay a re-sort
  // in records().
  if (sorted_ && !records_.empty() &&
      canonical_less(record, records_.back())) {
    sorted_ = false;
  }
  records_.push_back(record);
}

void TraceSet::ensure_sorted() const {
  if (sorted_) return;
  std::sort(records_.begin(), records_.end(), canonical_less);
  sorted_ = true;
  ++sort_passes_;
}

std::span<const UnavailabilityRecord> TraceSet::records() const {
  ensure_sorted();
  return records_;
}

std::vector<UnavailabilityRecord> TraceSet::machine_records(MachineId m) const {
  ensure_sorted();
  std::vector<UnavailabilityRecord> out;
  for (const auto& r : records_) {
    if (r.machine == m) out.push_back(r);
  }
  return out;
}

TraceSet TraceSet::filter(sim::SimTime from, sim::SimTime to,
                          std::span<const MachineId> machines) const {
  fgcs::require(to > from, "filter window must be non-empty");
  TraceSet out(machines_, std::max(from, start_), std::min(to, end_));
  auto keep_machine = [&](MachineId m) {
    if (machines.empty()) return true;
    for (const MachineId want : machines) {
      if (want == m) return true;
    }
    return false;
  };
  ensure_sorted();
  for (const auto& r : records_) {
    if (!keep_machine(r.machine)) continue;
    if (r.end <= from || r.start >= to) continue;
    UnavailabilityRecord clipped = r;
    clipped.start = std::max(r.start, from);
    clipped.end = std::min(r.end, to);
    out.add(clipped);
  }
  return out;
}

TraceSet TraceSet::merge(const TraceSet& other) const {
  fgcs::require(start_ == other.start_ && end_ == other.end_,
                "merge requires identical horizons");
  TraceSet out(machines_ + other.machines_, start_, end_);
  for (const auto& r : records()) out.add(r);
  for (const auto& r : other.records()) {
    UnavailabilityRecord shifted = r;
    shifted.machine += machines_;
    out.add(shifted);
  }
  return out;
}

std::vector<AvailabilityInterval> TraceSet::availability_intervals() const {
  ensure_sorted();
  std::vector<AvailabilityInterval> intervals;
  std::size_t i = 0;
  while (i < records_.size()) {
    const MachineId m = records_[i].machine;
    // Walk this machine's episodes; the gap between consecutive episodes
    // is an availability interval.
    sim::SimTime prev_end = records_[i].end;
    ++i;
    while (i < records_.size() && records_[i].machine == m) {
      const auto& r = records_[i];
      if (r.start > prev_end) {
        intervals.push_back({m, prev_end, r.start});
      }
      prev_end = std::max(prev_end, r.end);
      ++i;
    }
  }
  return intervals;
}

}  // namespace fgcs::trace

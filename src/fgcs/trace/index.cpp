#include "fgcs/trace/index.hpp"

#include <algorithm>

#include "fgcs/trace/format_v2.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {

TraceIndex::TraceIndex(const TraceSet& trace)
    : horizon_start_(trace.horizon_start()),
      by_machine_(trace.machine_count()) {
  for (const auto& r : trace.records()) {
    by_machine_[r.machine].push_back(r);
  }
  // TraceSet::records() is sorted by (machine, start), so each bucket is
  // already start-sorted; assert in case of future changes.
  for (const auto& bucket : by_machine_) {
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      FGCS_ASSERT(bucket[i - 1].start <= bucket[i].start);
    }
  }
}

TraceIndex::TraceIndex(const TraceView& view)
    : horizon_start_(view.horizon_start()),
      by_machine_(view.machine_count()) {
  view.for_each([&](const UnavailabilityRecord& r) {
    fgcs::require(r.machine < by_machine_.size(),
                  "TraceIndex: v2 segment record machine out of range");
    by_machine_[r.machine].push_back(r);
  });
  // Spill segments carry records in per-shard completion order, which is
  // machine-grouped but not guaranteed start-sorted within a machine;
  // normalize to the canonical order (a no-op when already sorted).
  for (auto& bucket : by_machine_) {
    if (!std::is_sorted(bucket.begin(), bucket.end(),
                        TraceSet::canonical_less)) {
      std::sort(bucket.begin(), bucket.end(), TraceSet::canonical_less);
    }
  }
}

const std::vector<UnavailabilityRecord>& TraceIndex::machine(
    MachineId m) const {
  fgcs::require(m < by_machine_.size(), "TraceIndex: machine out of range");
  return by_machine_[m];
}

bool TraceIndex::any_overlap(MachineId m, sim::SimTime t0,
                             sim::SimTime t1) const {
  const auto& bucket = machine(m);
  // First episode with start >= t1; everything at or after it starts too
  // late. Episodes are not nested (sequential detector output), so only a
  // bounded scan backwards is needed.
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), t1,
      [](const UnavailabilityRecord& r, sim::SimTime t) { return r.start < t; });
  while (it != bucket.begin()) {
    --it;
    if (it->end > t0) return true;
    // Episodes are time-ordered and non-overlapping; once an episode ends
    // at or before t0, earlier ones end even earlier.
    break;
  }
  return false;
}

const UnavailabilityRecord* TraceIndex::first_overlap(MachineId m,
                                                      sim::SimTime t0,
                                                      sim::SimTime t1) const {
  const auto& bucket = machine(m);
  // First episode with start >= t0; the one before it may straddle t0.
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), t0,
      [](const UnavailabilityRecord& r, sim::SimTime t) { return r.start < t; });
  if (it != bucket.begin()) {
    auto prev = it - 1;
    if (prev->end > t0) return &*prev;
  }
  if (it != bucket.end() && it->start < t1) return &*it;
  return nullptr;
}

std::size_t TraceIndex::count_starts_in(MachineId m, sim::SimTime t0,
                                        sim::SimTime t1) const {
  const auto& bucket = machine(m);
  auto cmp = [](const UnavailabilityRecord& r, sim::SimTime t) {
    return r.start < t;
  };
  auto lo = std::lower_bound(bucket.begin(), bucket.end(), t0, cmp);
  auto hi = std::lower_bound(bucket.begin(), bucket.end(), t1, cmp);
  return static_cast<std::size_t>(hi - lo);
}

sim::SimTime TraceIndex::last_end_before(MachineId m, sim::SimTime t,
                                         bool* inside) const {
  const auto& bucket = machine(m);
  if (inside) *inside = false;
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), t,
      [](const UnavailabilityRecord& r, sim::SimTime tt) {
        return r.start <= tt;
      });
  // `it` is the first episode starting after t; the previous one (if any)
  // is the latest starting at or before t.
  if (it == bucket.begin()) return horizon_start_;
  --it;
  if (it->end > t) {
    if (inside) *inside = true;
    return it->end;
  }
  return it->end;
}

}  // namespace fgcs::trace

// A multi-machine unavailability trace and derived availability intervals.
#pragma once

#include <span>
#include <vector>

#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/records.hpp"

namespace fgcs::trace {

class TraceSet {
 public:
  TraceSet() = default;

  /// `machines` is the number of machines in the testbed; records may be
  /// appended in any order (they are sorted per machine on demand).
  TraceSet(std::uint32_t machines, sim::SimTime horizon_start,
           sim::SimTime horizon_end);

  void add(UnavailabilityRecord record);

  /// Pre-sizes the record store for a bulk insert of `n` total records.
  void reserve(std::size_t n) { records_.reserve(n); }

  /// The canonical record order: a total order over every field, so two
  /// TraceSets holding the same records always agree on records() order
  /// regardless of insertion order. Appending in this order keeps the set
  /// sorted and records() free of re-sort work.
  static bool canonical_less(const UnavailabilityRecord& a,
                             const UnavailabilityRecord& b);

  /// Number of actual sort passes records() has had to perform — stays 0
  /// when every add() appended in canonical order (sweep engines rely on
  /// this to keep records() O(1) after streaming inserts).
  std::size_t sort_passes() const { return sort_passes_; }

  std::uint32_t machine_count() const { return machines_; }
  sim::SimTime horizon_start() const { return start_; }
  sim::SimTime horizon_end() const { return end_; }
  sim::SimDuration horizon() const { return end_ - start_; }

  /// All records, sorted by (machine, start).
  std::span<const UnavailabilityRecord> records() const;

  /// Records of one machine, sorted by start.
  std::vector<UnavailabilityRecord> machine_records(MachineId m) const;

  /// Derives availability intervals between consecutive episodes on each
  /// machine. Boundary intervals (before the first and after the last
  /// episode of a machine) are censored and excluded.
  std::vector<AvailabilityInterval> availability_intervals() const;

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// A new TraceSet restricted to [from, to) (records clipped to the
  /// window) and, when `machines` is non-empty, to those machine ids
  /// (ids are preserved, not renumbered).
  TraceSet filter(sim::SimTime from, sim::SimTime to,
                  std::span<const MachineId> machines = {}) const;

  /// Merges another trace collected over the same horizon with disjoint
  /// machine ids mapped into this set's id space: `other`'s machine k
  /// becomes machine_count() + k. Returns the combined set.
  TraceSet merge(const TraceSet& other) const;

 private:
  void ensure_sorted() const;

  std::uint32_t machines_ = 0;
  sim::SimTime start_;
  sim::SimTime end_;
  mutable std::vector<UnavailabilityRecord> records_;
  mutable bool sorted_ = true;
  mutable std::size_t sort_passes_ = 0;
};

}  // namespace fgcs::trace

// Columnar binary trace format v2: streaming writes, zero-copy reads.
//
// The row-oriented v1 binary format (io.hpp) writes one 37-byte record at
// a time and must be fully materialized into a TraceSet to be read. Fleet
// sweeps need the opposite shape: shards *stream* finished machines out
// without holding the fleet in memory, and analyzers *scan* million-record
// segments without copying them. Format v2 is built for that:
//
//   header   magic "FGCSTRC2", u32 machines, i64 start_us, i64 end_us
//   blocks   repeated: u32 block magic "BLK3", u32 count n, then SoA
//            columns u32 machine[n], i64 start_us[n], i64 end_us[n],
//            u8 cause[n], f64 host_cpu[n], f64 free_mem_mb[n], then a
//            u32 CRC-32 of (count || columns) — written *last*, so a
//            block is committed iff its checksum is present and matches
//   zones    magic "FGCSZON1", u64 entry_count (== block_count), per
//            block {i64 min_start_us, i64 max_start_us, i64 min_end_us,
//            i64 max_end_us, u8 cause_mask} — the per-block zone maps
//            the query engine prunes on (cause_mask bit k set when cause
//            S(3+k) occurs in the block)
//   footer   u64 block_count, per block {u64 offset, u64 count,
//            u32 min_machine, u32 max_machine}, u64 total_records,
//            u64 footer_offset, trailing magic "FGCSEND2"
//
// All integers are native little-endian, matching v1. The footer index at
// the tail lets TraceView open a segment by reading 16 trailing bytes and
// one index table — no scan — and the per-block machine ranges let
// consumers skip blocks wholesale.
//
// The zone section is a *backward-compatible* footer extension: it sits
// between the last block and the classic footer, inside the byte range
// old readers never interpret (their block extents are only checked
// against footer_offset, and the salvage scanner stops at the first
// non-block marker — which the zone magic is). New readers find it by
// looking exactly 16 + 33 * block_count bytes before footer_offset for
// the zone magic; segments written before this extension simply don't
// have it, and every block in them reports block_indexed() == false for
// the time/cause dimensions while machine pruning still works off the
// classic footer ranges.
//
// Crash tolerance: the writer goes through util::SyncFile and fsyncs on
// the FGCS_DURABILITY policy (every block at `block` level, segment seal
// at `commit`). The trailing per-block checksum makes torn writes
// *detectable*, not just survivable: load_trace_v2_salvage() rescans the
// block chain, keeps every committed block, truncates a torn final block
// wholesale (LoadReport::torn_final_block) instead of guessing at partial
// columns, and reports a missing footer after a clean block boundary as
// LoadReport::truncated_footer — so a crash is distinguishable from media
// corruption. Blocks with the legacy "BLK2" magic (no checksum) are still
// read and salvaged with the old last-column heuristic.
//
// trace::load_trace() auto-detects v2 by magic, so existing tools read
// both formats transparently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fgcs/trace/io.hpp"
#include "fgcs/trace/trace_set.hpp"
#include "fgcs/util/binio.hpp"
#include "fgcs/util/io.hpp"

namespace fgcs::trace {

/// Streaming columnar writer. Records are buffered into fixed-capacity
/// blocks and spilled to disk as each block fills; memory use is O(block),
/// not O(trace). finish() (or destruction) seals the file with the footer
/// index.
class TraceWriterV2 {
 public:
  static constexpr std::size_t kDefaultBlockRecords = 4096;

  /// Opens `path` for writing and emits the header. Throws IoError when
  /// the file cannot be created or the metadata is invalid.
  TraceWriterV2(const std::string& path, std::uint32_t machines,
                sim::SimTime horizon_start, sim::SimTime horizon_end,
                std::size_t block_records = kDefaultBlockRecords);
  ~TraceWriterV2();

  TraceWriterV2(const TraceWriterV2&) = delete;
  TraceWriterV2& operator=(const TraceWriterV2&) = delete;

  void append(const UnavailabilityRecord& record);
  void append(std::span<const UnavailabilityRecord> records);

  /// Flushes the pending block and writes the footer. Idempotent; called
  /// by the destructor if the caller forgot (destructor swallows errors,
  /// call finish() explicitly to see them).
  void finish();

  std::uint64_t records_written() const { return total_; }
  const std::string& path() const { return path_; }

  /// CRC-32 of every byte written so far; after finish() this is the
  /// content hash of the whole file (what the checkpoint manifest
  /// records, and what resume validation recomputes).
  std::uint32_t content_crc() const;

  /// File bytes written so far (the sealed file's size after finish()).
  std::uint64_t bytes_written() const;

 private:
  struct BlockMeta {
    std::uint64_t offset = 0;
    std::uint64_t count = 0;
    std::uint32_t min_machine = 0;
    std::uint32_t max_machine = 0;
    // Zone map, accumulated at spill time and emitted into the footer's
    // zone section by finish().
    std::int64_t min_start_us = 0;
    std::int64_t max_start_us = 0;
    std::int64_t min_end_us = 0;
    std::int64_t max_end_us = 0;
    std::uint8_t cause_mask = 0;
  };

  void flush_block();

  std::string path_;
  std::unique_ptr<util::SyncFile> out_;
  std::size_t block_records_;
  std::vector<UnavailabilityRecord> pending_;
  std::vector<BlockMeta> blocks_;
  std::uint64_t offset_ = 0;
  std::uint64_t total_ = 0;
  bool finished_ = false;
};

/// Writes a whole TraceSet as one v2 file (records in canonical order).
void write_trace_v2(const TraceSet& trace, const std::string& path);

/// Zero-copy reader over a v2 segment. The file is mmap()ed read-only
/// (with a buffered-read fallback) and records are materialized lazily
/// from the columns — opening a multi-million-record segment costs the
/// footer parse, not a full load. Throws IoError on malformed input; use
/// load_trace_v2_salvage() for damaged segments.
class TraceView {
 public:
  /// Typed in-place accessors over one block's SoA columns. The pointers
  /// alias the mapped file; every element access goes through util::load
  /// because the i64/f64 columns start at 4n-byte offsets and are not
  /// 8-aligned.
  struct ColumnSpans {
    const unsigned char* machine = nullptr;   // u32[n]
    const unsigned char* start_us = nullptr;  // i64[n]
    const unsigned char* end_us = nullptr;    // i64[n]
    const unsigned char* cause = nullptr;     // u8[n]
    const unsigned char* host_cpu = nullptr;  // f64[n]
    const unsigned char* free_mem = nullptr;  // f64[n]
    std::uint64_t count = 0;

    std::uint32_t machine_at(std::uint64_t i) const {
      return util::load<std::uint32_t>(machine + 4 * i);
    }
    std::int64_t start_at(std::uint64_t i) const {
      return util::load<std::int64_t>(start_us + 8 * i);
    }
    std::int64_t end_at(std::uint64_t i) const {
      return util::load<std::int64_t>(end_us + 8 * i);
    }
    std::uint8_t cause_at(std::uint64_t i) const { return cause[i]; }
    double host_cpu_at(std::uint64_t i) const {
      return util::load<double>(host_cpu + 8 * i);
    }
    double free_mem_at(std::uint64_t i) const {
      return util::load<double>(free_mem + 8 * i);
    }
  };

  /// Per-block zone map (time ranges + cause bitmask) parsed from the
  /// segment's zone section, when present.
  struct BlockZone {
    std::int64_t min_start_us = 0;
    std::int64_t max_start_us = 0;
    std::int64_t min_end_us = 0;
    std::int64_t max_end_us = 0;
    std::uint8_t cause_mask = 0;
  };

  explicit TraceView(const std::string& path);

  /// Opens a *damaged* segment (torn final block, truncated or missing
  /// footer) by rescanning the block chain the way load_trace_v2_salvage
  /// does, keeping every committed block: "BLK3" blocks whose trailing
  /// CRC verifies, complete legacy "BLK2" blocks. A torn final block is
  /// dropped whole; a mid-file checksum mismatch skips that block and
  /// keeps walking. The header must be intact. Recovered blocks carry no
  /// index metadata (block_indexed() == false), so query scans fall back
  /// to full-scanning them. Throws IoError only when the path cannot be
  /// opened or the header itself is unusable.
  static TraceView open_salvaged(const std::string& path);

  TraceView(TraceView&& other) noexcept = default;
  TraceView& operator=(TraceView&& other) noexcept = default;
  TraceView(const TraceView&) = delete;
  TraceView& operator=(const TraceView&) = delete;

  std::uint32_t machine_count() const { return machines_; }
  sim::SimTime horizon_start() const { return start_; }
  sim::SimTime horizon_end() const { return end_; }

  /// Total records across all blocks.
  std::uint64_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t block_size(std::size_t block) const;
  /// Smallest/largest machine id present in a block — consumers scanning
  /// for one machine can skip non-overlapping blocks without touching
  /// their columns.
  std::uint32_t block_min_machine(std::size_t block) const;
  std::uint32_t block_max_machine(std::size_t block) const;

  /// True when `block` has index metadata (footer machine range + zone
  /// map) usable for pruning. False for every block of a salvaged
  /// segment, and for every block of a pre-zone-section segment.
  bool block_indexed(std::size_t block) const;
  /// Zone map of an indexed block; meaningful only when
  /// block_indexed(block) is true.
  const BlockZone& block_zone(std::size_t block) const;
  /// True when the segment carries the zone section (written by current
  /// TraceWriterV2; absent in older segments and salvaged opens).
  bool has_zone_maps() const { return has_zones_; }
  /// True when this view came from open_salvaged().
  bool salvaged() const { return salvaged_; }

  /// The six column spans of `block`, for in-place scans.
  ColumnSpans columns(std::size_t block) const;

  /// Record `i` of `block`, materialized from the columns.
  UnavailabilityRecord record(std::size_t block, std::size_t i) const;

  /// Visits every record in stored order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const std::uint64_t n = block_size(b);
      for (std::uint64_t i = 0; i < n; ++i) {
        f(record(b, i));
      }
    }
  }

  /// Materializes the whole view as a TraceSet (for code that needs the
  /// mutable/derived APIs).
  TraceSet to_trace_set() const;

  /// Recomputes every checksummed ("BLK3") block's CRC against the stored
  /// value; throws IoError naming the first mismatching block. Legacy
  /// "BLK2" blocks carry no checksum and are skipped. Returns the number
  /// of blocks verified. O(file) — the strict loader calls this; the
  /// zero-copy scan paths stay lazy.
  std::size_t verify_block_checksums() const;

  /// True when the view is backed by an mmap (false: buffered fallback).
  bool memory_mapped() const { return file_.memory_mapped(); }

  /// Drops the mapping's resident pages after a scan (see
  /// util::MappedFile::release_pages). The view stays usable.
  void release_pages() const noexcept { file_.release_pages(); }

 private:
  struct Block {
    std::uint64_t offset = 0;  // file offset of the block's column data
    std::uint64_t count = 0;
    std::uint32_t min_machine = 0;
    std::uint32_t max_machine = 0;
    bool checksummed = false;  // "BLK3" (trailing CRC) vs legacy "BLK2"
    bool indexed = false;      // footer machine range + zone map present
    BlockZone zone;
  };

  struct SalvageTag {};
  TraceView(const std::string& path, SalvageTag);

  const unsigned char* at(std::uint64_t offset) const {
    return file_.at(offset);
  }

  util::MappedFile file_;

  std::uint32_t machines_ = 0;
  sim::SimTime start_;
  sim::SimTime end_;
  std::uint64_t total_ = 0;
  std::vector<Block> blocks_;
  bool has_zones_ = false;
  bool salvaged_ = false;
};

/// True when `path` starts with the v2 magic (false on short/unreadable
/// files — callers fall back to the v1 readers).
bool is_trace_v2(const std::string& path);

/// Strict v2 load: TraceView + verify_block_checksums() + to_trace_set().
/// Throws IoError.
TraceSet load_trace_v2(const std::string& path);

/// Salvage v2 load: ignores the footer and rescans the block chain,
/// recovering all records whose every column element precedes the
/// truncation/corruption point. Never throws on damaged content (only on
/// an unopenable path).
LoadReport load_trace_v2_salvage(const std::string& path);

}  // namespace fgcs::trace

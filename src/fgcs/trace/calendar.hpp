// Trace calendar: maps simulated instants to calendar structure.
//
// The paper's trace runs three months, August to November 2005, on a
// testbed whose behaviour differs by hour-of-day and weekday/weekend.
// TraceCalendar anchors SimTime::epoch() to local midnight of the trace's
// first day and answers day/hour/day-class queries. The default anchor is
// Monday, August 15, 2005 (the paper's trace started in August 2005).
#pragma once

#include <string>

#include "fgcs/sim/time.hpp"

namespace fgcs::trace {

/// Day-of-week with Monday == 0 ... Sunday == 6.
enum class DayOfWeek : int {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

const char* to_string(DayOfWeek d);

class TraceCalendar {
 public:
  /// `start_dow` is the day-of-week of day 0 (the day containing epoch).
  explicit TraceCalendar(DayOfWeek start_dow = DayOfWeek::kMonday)
      : start_dow_(static_cast<int>(start_dow)) {}

  /// Day index since epoch (negative times clamp to day 0).
  int day_index(sim::SimTime t) const;

  /// Hour of day, 0..23.
  int hour_of_day(sim::SimTime t) const;

  DayOfWeek day_of_week(sim::SimTime t) const;
  DayOfWeek day_of_week_for_day(int day_index) const;

  bool is_weekend(sim::SimTime t) const;
  bool is_weekend_day(int day_index) const;

  /// Midnight starting the given day.
  sim::SimTime day_start(int day_index) const;

  /// "day 12 (Sat) 14:05" style label for reports.
  std::string label(sim::SimTime t) const;

 private:
  int start_dow_;
};

}  // namespace fgcs::trace

// Per-machine episode index for fast time queries over a TraceSet.
//
// Predictors and the evaluation harness ask "does any episode overlap
// [t0, t1)?" and "how many episodes start in [t0, t1)?" many thousands of
// times; TraceIndex answers in O(log n).
#pragma once

#include <vector>

#include "fgcs/trace/trace_set.hpp"

namespace fgcs::trace {

class TraceView;

class TraceIndex {
 public:
  explicit TraceIndex(const TraceSet& trace);

  /// Indexes a spilled v2 segment directly from its zero-copy view — no
  /// intermediate TraceSet materialization.
  explicit TraceIndex(const TraceView& view);

  std::uint32_t machine_count() const {
    return static_cast<std::uint32_t>(by_machine_.size());
  }

  /// Episodes of machine m, sorted by start.
  const std::vector<UnavailabilityRecord>& machine(MachineId m) const;

  /// True if any episode of machine m overlaps [t0, t1).
  bool any_overlap(MachineId m, sim::SimTime t0, sim::SimTime t1) const;

  /// Earliest episode of machine m overlapping [t0, t1); nullptr if none.
  const UnavailabilityRecord* first_overlap(MachineId m, sim::SimTime t0,
                                            sim::SimTime t1) const;

  /// Number of episodes of machine m starting in [t0, t1).
  std::size_t count_starts_in(MachineId m, sim::SimTime t0,
                              sim::SimTime t1) const;

  /// End time of the last episode of machine m ending at or before t;
  /// returns horizon_start when none exists. If t falls inside an episode,
  /// sets *inside to true (when provided).
  sim::SimTime last_end_before(MachineId m, sim::SimTime t,
                               bool* inside = nullptr) const;

 private:
  sim::SimTime horizon_start_;
  std::vector<std::vector<UnavailabilityRecord>> by_machine_;
};

}  // namespace fgcs::trace

// Trace record types (§5: "the data contains the start and end time of
// each occurrence of resource unavailability, the corresponding failure
// state (S3, S4, or S5), and the available CPU and memory for guest jobs").
#pragma once

#include <cstdint>
#include <vector>

#include "fgcs/monitor/availability.hpp"
#include "fgcs/sim/time.hpp"

namespace fgcs::trace {

using MachineId = std::uint32_t;

/// One unavailability occurrence on one machine.
struct UnavailabilityRecord {
  MachineId machine = 0;
  sim::SimTime start;
  sim::SimTime end;
  monitor::AvailabilityState cause =
      monitor::AvailabilityState::kS3CpuUnavailable;
  /// Host CPU load observed when the episode began (available CPU for
  /// guests is 1 - host_cpu).
  double host_cpu = 0.0;
  /// Free memory available to guests when the episode began, MB.
  double free_mem_mb = 0.0;

  sim::SimDuration duration() const { return end - start; }

  /// §5.1's classification: URR episodes shorter than one minute are
  /// machine reboots; longer ones are hardware/software failures.
  bool is_reboot() const {
    return cause == monitor::AvailabilityState::kS5MachineUnavailable &&
           duration() < sim::SimDuration::minutes(1);
  }
};

/// A maximal period during which a guest may run (or be suspended) but
/// does not fail (§5.2).
struct AvailabilityInterval {
  MachineId machine = 0;
  sim::SimTime start;
  sim::SimTime end;

  sim::SimDuration length() const { return end - start; }
};

}  // namespace fgcs::trace

#include "fgcs/trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {

namespace {

constexpr char kCsvMagic[] = "# fgcs-trace v1";
constexpr char kBinMagic[8] = {'F', 'G', 'C', 'S', 'T', 'R', 'C', '1'};

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw IoError("truncated binary trace");
  return value;
}

std::int64_t parse_i64(const std::string& s) {
  std::size_t pos = 0;
  const long long v = std::stoll(s, &pos);
  if (pos != s.size()) throw IoError("bad integer in trace: " + s);
  return v;
}

double parse_f64(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) throw IoError("bad number in trace: " + s);
  return v;
}

}  // namespace

void write_trace_csv(const TraceSet& trace, std::ostream& out) {
  out << kCsvMagic << " machines=" << trace.machine_count()
      << " start_us=" << trace.horizon_start().as_micros()
      << " end_us=" << trace.horizon_end().as_micros() << '\n';
  util::CsvWriter csv(out);
  csv.write("machine", "start_us", "end_us", "cause", "host_cpu",
            "free_mem_mb");
  for (const auto& r : trace.records()) {
    csv.write(static_cast<std::uint64_t>(r.machine), r.start.as_micros(),
              r.end.as_micros(), monitor::to_string(r.cause), r.host_cpu,
              r.free_mem_mb);
  }
  if (!out) throw IoError("failed writing CSV trace");
}

TraceSet read_trace_csv(std::istream& in) {
  std::string meta_line;
  if (!std::getline(in, meta_line) ||
      meta_line.rfind(kCsvMagic, 0) != 0) {
    throw IoError("missing fgcs-trace CSV header");
  }
  std::uint32_t machines = 0;
  std::int64_t start_us = 0, end_us = 0;
  {
    std::istringstream ms(meta_line.substr(std::strlen(kCsvMagic)));
    std::string token;
    while (ms >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "machines") {
        machines = static_cast<std::uint32_t>(parse_i64(value));
      } else if (key == "start_us") {
        start_us = parse_i64(value);
      } else if (key == "end_us") {
        end_us = parse_i64(value);
      }
    }
  }
  if (machines == 0 || end_us <= start_us) {
    throw IoError("invalid fgcs-trace CSV metadata");
  }
  TraceSet trace(machines, sim::SimTime::from_micros(start_us),
                 sim::SimTime::from_micros(end_us));

  util::CsvReader csv(in);
  const auto c_machine = csv.column("machine");
  const auto c_start = csv.column("start_us");
  const auto c_end = csv.column("end_us");
  const auto c_cause = csv.column("cause");
  const auto c_cpu = csv.column("host_cpu");
  const auto c_mem = csv.column("free_mem_mb");
  for (const auto& row : csv.rows()) {
    UnavailabilityRecord r;
    r.machine = static_cast<MachineId>(parse_i64(row[c_machine]));
    r.start = sim::SimTime::from_micros(parse_i64(row[c_start]));
    r.end = sim::SimTime::from_micros(parse_i64(row[c_end]));
    r.cause = monitor::availability_state_from_string(row[c_cause].c_str());
    r.host_cpu = parse_f64(row[c_cpu]);
    r.free_mem_mb = parse_f64(row[c_mem]);
    trace.add(r);
  }
  return trace;
}

void write_trace_binary(const TraceSet& trace, std::ostream& out) {
  out.write(kBinMagic, sizeof kBinMagic);
  put<std::uint32_t>(out, trace.machine_count());
  put<std::int64_t>(out, trace.horizon_start().as_micros());
  put<std::int64_t>(out, trace.horizon_end().as_micros());
  put<std::uint64_t>(out, trace.records().size());
  for (const auto& r : trace.records()) {
    put<std::uint32_t>(out, r.machine);
    put<std::int64_t>(out, r.start.as_micros());
    put<std::int64_t>(out, r.end.as_micros());
    put<std::uint8_t>(out, static_cast<std::uint8_t>(r.cause));
    put<double>(out, r.host_cpu);
    put<double>(out, r.free_mem_mb);
  }
  if (!out) throw IoError("failed writing binary trace");
}

TraceSet read_trace_binary(std::istream& in) {
  char magic[sizeof kBinMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kBinMagic, sizeof kBinMagic) != 0) {
    throw IoError("not an fgcs binary trace");
  }
  const auto machines = get<std::uint32_t>(in);
  const auto start_us = get<std::int64_t>(in);
  const auto end_us = get<std::int64_t>(in);
  const auto count = get<std::uint64_t>(in);
  if (machines == 0 || end_us <= start_us) {
    throw IoError("invalid binary trace metadata");
  }
  TraceSet trace(machines, sim::SimTime::from_micros(start_us),
                 sim::SimTime::from_micros(end_us));
  for (std::uint64_t i = 0; i < count; ++i) {
    UnavailabilityRecord r;
    r.machine = get<std::uint32_t>(in);
    r.start = sim::SimTime::from_micros(get<std::int64_t>(in));
    r.end = sim::SimTime::from_micros(get<std::int64_t>(in));
    const auto cause = get<std::uint8_t>(in);
    if (cause < 3 || cause > 5) throw IoError("invalid cause in binary trace");
    r.cause = static_cast<monitor::AvailabilityState>(cause);
    r.host_cpu = get<double>(in);
    r.free_mem_mb = get<double>(in);
    trace.add(r);
  }
  return trace;
}

void save_trace(const TraceSet& trace, const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  std::ofstream out(path, csv ? std::ios::out : std::ios::out | std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  if (csv) {
    write_trace_csv(trace, out);
  } else {
    write_trace_binary(trace, out);
  }
}

TraceSet load_trace(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  std::ifstream in(path, csv ? std::ios::in : std::ios::in | std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  return csv ? read_trace_csv(in) : read_trace_binary(in);
}

}  // namespace fgcs::trace

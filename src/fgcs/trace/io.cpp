#include "fgcs/trace/io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "fgcs/trace/format_v2.hpp"
#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {

namespace {

constexpr char kCsvMagic[] = "# fgcs-trace v1";
constexpr char kBinMagic[8] = {'F', 'G', 'C', 'S', 'T', 'R', 'C', '1'};
constexpr std::size_t kMaxDiagnostics = 8;

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

/// Byte-offset-tracking binary reader; failures carry source + offset.
class BinReader {
 public:
  BinReader(std::istream& in, const std::string& source)
      : in_(in), source_(source) {}

  /// Strict read: throws IoError with the byte offset on truncation.
  template <typename T>
  T get(const char* what) {
    T value{};
    if (!try_get(value)) {
      throw IoError(source_ + ": truncated binary trace at byte offset " +
                    std::to_string(offset_) + " (reading " + what + ")");
    }
    return value;
  }

  /// Tolerant read: returns false (without throwing) when the input ends.
  template <typename T>
  bool try_get(T& value) {
    in_.read(reinterpret_cast<char*>(&value), sizeof value);
    if (!in_) return false;
    offset_ += sizeof value;
    return true;
  }

  std::uint64_t offset() const { return offset_; }

 private:
  std::istream& in_;
  const std::string& source_;
  std::uint64_t offset_ = 0;
};

std::int64_t parse_i64(const std::string& s, const std::string& ctx) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw IoError("");
    return v;
  } catch (const std::exception&) {
    throw IoError(ctx + ": bad integer '" + s + "'");
  }
}

double parse_f64(const std::string& s, const std::string& ctx) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw IoError("");
    return v;
  } catch (const std::exception&) {
    throw IoError(ctx + ": bad number '" + s + "'");
  }
}

/// `source:line` prefix for CSV diagnostics.
std::string at_line(const std::string& source, std::size_t line) {
  return source + ":" + std::to_string(line);
}

struct CsvMeta {
  std::uint32_t machines = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;

  bool valid() const { return machines > 0 && end_us > start_us; }
};

/// Parses the "# fgcs-trace v1 machines=.. start_us=.. end_us=.." line.
/// Unparseable key values are left at their defaults (the caller decides
/// whether that is fatal).
CsvMeta parse_csv_meta(const std::string& meta_line) {
  CsvMeta meta;
  std::istringstream ms(meta_line.substr(std::strlen(kCsvMagic)));
  std::string token;
  while (ms >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    while (!value.empty() && value.back() == '\r') value.pop_back();
    std::int64_t parsed = 0;
    try {
      parsed = parse_i64(value, "");
    } catch (const IoError&) {
      continue;
    }
    if (key == "machines") {
      meta.machines = parsed > 0 ? static_cast<std::uint32_t>(parsed) : 0;
    } else if (key == "start_us") {
      meta.start_us = parsed;
    } else if (key == "end_us") {
      meta.end_us = parsed;
    }
  }
  return meta;
}

/// Semantic validation shared by both formats; returns a description of
/// the defect, or empty when the record is well-formed.
std::string record_defect(const UnavailabilityRecord& r) {
  if (r.end < r.start) return "episode ends before it starts";
  if (!std::isfinite(r.host_cpu) || r.host_cpu < 0.0 || r.host_cpu > 1.0) {
    return "host_cpu out of [0, 1]";
  }
  if (!std::isfinite(r.free_mem_mb) || r.free_mem_mb < 0.0) {
    return "negative or non-finite free_mem_mb";
  }
  return {};
}

void add_diagnostic(LoadReport& report, std::string message) {
  if (report.diagnostics.size() < kMaxDiagnostics) {
    report.diagnostics.push_back(std::move(message));
  }
}

/// Builds the report's TraceSet from salvaged records, inferring the
/// metadata from the records themselves when the header was unusable.
void finish_salvage(LoadReport& report, std::vector<UnavailabilityRecord> recs,
                    const CsvMeta& meta) {
  CsvMeta use = meta;
  if (!use.valid()) {
    report.metadata_inferred = true;
    use.machines = 1;
    use.start_us = 0;
    use.end_us = 1;
    if (!recs.empty()) {
      std::int64_t lo = std::numeric_limits<std::int64_t>::max();
      std::int64_t hi = std::numeric_limits<std::int64_t>::min();
      std::uint32_t max_machine = 0;
      for (const auto& r : recs) {
        lo = std::min(lo, r.start.as_micros());
        hi = std::max(hi, r.end.as_micros());
        max_machine = std::max(max_machine, r.machine);
      }
      use.machines = max_machine + 1;
      use.start_us = lo;
      use.end_us = hi > lo ? hi : lo + 1;
    }
  } else {
    // Drop records that don't fit the declared machine grid.
    const auto fits = [&](const UnavailabilityRecord& r) {
      return r.machine < use.machines;
    };
    const auto bad = static_cast<std::size_t>(
        std::count_if(recs.begin(), recs.end(),
                      [&](const auto& r) { return !fits(r); }));
    if (bad > 0) {
      report.skipped += bad;
      add_diagnostic(report, std::to_string(bad) +
                                 " record(s) reference machines outside the "
                                 "declared machine count");
      recs.erase(std::remove_if(recs.begin(), recs.end(),
                                [&](const auto& r) { return !fits(r); }),
                 recs.end());
    }
  }
  report.trace = TraceSet(use.machines, sim::SimTime::from_micros(use.start_us),
                          sim::SimTime::from_micros(use.end_us));
  for (const auto& r : recs) report.trace.add(r);
  report.recovered = recs.size();
}

}  // namespace

void write_trace_csv(const TraceSet& trace, std::ostream& out) {
  out << kCsvMagic << " machines=" << trace.machine_count()
      << " start_us=" << trace.horizon_start().as_micros()
      << " end_us=" << trace.horizon_end().as_micros() << '\n';
  util::CsvWriter csv(out);
  csv.write("machine", "start_us", "end_us", "cause", "host_cpu",
            "free_mem_mb");
  for (const auto& r : trace.records()) {
    csv.write(static_cast<std::uint64_t>(r.machine), r.start.as_micros(),
              r.end.as_micros(), monitor::to_string(r.cause), r.host_cpu,
              r.free_mem_mb);
  }
  if (!out) throw IoError("failed writing CSV trace");
}

TraceSet read_trace_csv(std::istream& in, const std::string& source) {
  std::string meta_line;
  if (!std::getline(in, meta_line) || meta_line.rfind(kCsvMagic, 0) != 0) {
    throw IoError(at_line(source, 1) + ": missing fgcs-trace CSV header");
  }
  const CsvMeta meta = parse_csv_meta(meta_line);
  if (!meta.valid()) {
    throw IoError(at_line(source, 1) + ": invalid fgcs-trace CSV metadata");
  }
  TraceSet trace(meta.machines, sim::SimTime::from_micros(meta.start_us),
                 sim::SimTime::from_micros(meta.end_us));

  std::string line;
  if (!std::getline(in, line)) {
    throw IoError(at_line(source, 2) + ": missing CSV column header");
  }
  const auto header = util::parse_csv_line(line);
  const auto col = [&](const char* name) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    throw IoError(at_line(source, 2) + ": CSV column not found: " +
                  std::string(name));
  };
  const auto c_machine = col("machine");
  const auto c_start = col("start_us");
  const auto c_end = col("end_us");
  const auto c_cause = col("cause");
  const auto c_cpu = col("host_cpu");
  const auto c_mem = col("free_mem_mb");

  std::size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string ctx = at_line(source, line_no);
    std::vector<std::string> row;
    try {
      row = util::parse_csv_line(line);
    } catch (const IoError& e) {
      throw IoError(ctx + ": " + e.what());
    }
    if (row.size() != header.size()) {
      throw IoError(ctx + ": CSV row has " + std::to_string(row.size()) +
                    " fields, header has " + std::to_string(header.size()));
    }
    UnavailabilityRecord r;
    r.machine = static_cast<MachineId>(parse_i64(row[c_machine], ctx));
    r.start = sim::SimTime::from_micros(parse_i64(row[c_start], ctx));
    r.end = sim::SimTime::from_micros(parse_i64(row[c_end], ctx));
    try {
      r.cause = monitor::availability_state_from_string(row[c_cause].c_str());
    } catch (const std::exception& e) {
      throw IoError(ctx + ": " + e.what());
    }
    r.host_cpu = parse_f64(row[c_cpu], ctx);
    r.free_mem_mb = parse_f64(row[c_mem], ctx);
    try {
      trace.add(r);
    } catch (const std::exception& e) {
      throw IoError(ctx + ": " + e.what());
    }
  }
  return trace;
}

LoadReport read_trace_csv_salvage(std::istream& in,
                                  const std::string& source) {
  LoadReport report;
  CsvMeta meta;

  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false, saw_header = false, saw_content = false;
  std::size_t c_machine = 0, c_start = 0, c_end = 0, c_cause = 0, c_cpu = 0,
              c_mem = 0, columns = 0;
  std::vector<UnavailabilityRecord> recs;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    saw_content = true;
    if (!saw_magic && line.rfind(kCsvMagic, 0) == 0) {
      saw_magic = true;
      meta = parse_csv_meta(line);
      if (!meta.valid()) {
        add_diagnostic(report, at_line(source, line_no) +
                                   ": unusable metadata; inferring from "
                                   "records");
      }
      continue;
    }
    std::vector<std::string> row;
    try {
      row = util::parse_csv_line(line);
    } catch (const IoError&) {
      ++report.skipped;
      add_diagnostic(report,
                     at_line(source, line_no) + ": unparseable CSV line");
      continue;
    }
    if (!saw_header) {
      // The first parseable non-magic line should be the column header.
      const auto find = [&](const char* name, std::size_t& out) {
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (row[i] == name) {
            out = i;
            return true;
          }
        }
        return false;
      };
      if (find("machine", c_machine) && find("start_us", c_start) &&
          find("end_us", c_end) && find("cause", c_cause) &&
          find("host_cpu", c_cpu) && find("free_mem_mb", c_mem)) {
        saw_header = true;
        columns = row.size();
        continue;
      }
      // Headerless data (the header itself was destroyed): fall back to
      // the canonical column order.
      c_machine = 0;
      c_start = 1;
      c_end = 2;
      c_cause = 3;
      c_cpu = 4;
      c_mem = 5;
      columns = 6;
      saw_header = true;
      add_diagnostic(report, at_line(source, line_no) +
                                 ": no column header; assuming canonical "
                                 "column order");
      // fall through: treat this line as data
    }
    if (row.size() != columns) {
      ++report.skipped;
      add_diagnostic(report, at_line(source, line_no) + ": expected " +
                                 std::to_string(columns) + " fields, got " +
                                 std::to_string(row.size()));
      continue;
    }
    try {
      UnavailabilityRecord r;
      r.machine = static_cast<MachineId>(parse_i64(row[c_machine], ""));
      r.start = sim::SimTime::from_micros(parse_i64(row[c_start], ""));
      r.end = sim::SimTime::from_micros(parse_i64(row[c_end], ""));
      r.cause = monitor::availability_state_from_string(row[c_cause].c_str());
      r.host_cpu = parse_f64(row[c_cpu], "");
      r.free_mem_mb = parse_f64(row[c_mem], "");
      const std::string defect = record_defect(r);
      if (!defect.empty()) {
        ++report.skipped;
        add_diagnostic(report, at_line(source, line_no) + ": " + defect);
        continue;
      }
      recs.push_back(r);
    } catch (const std::exception&) {
      ++report.skipped;
      add_diagnostic(report,
                     at_line(source, line_no) + ": malformed record");
    }
  }
  if (!saw_content) {
    // A zero-length (or whitespace-only) stream is an empty trace, not
    // damage: report it clean instead of flagging inferred metadata.
    report.trace = TraceSet(1, sim::SimTime::from_micros(0),
                            sim::SimTime::from_micros(1));
    return report;
  }
  if (!saw_magic) {
    add_diagnostic(report,
                   source + ": missing fgcs-trace magic; metadata inferred");
  }
  finish_salvage(report, std::move(recs), meta);
  return report;
}

void write_trace_binary(const TraceSet& trace, std::ostream& out) {
  out.write(kBinMagic, sizeof kBinMagic);
  put<std::uint32_t>(out, trace.machine_count());
  put<std::int64_t>(out, trace.horizon_start().as_micros());
  put<std::int64_t>(out, trace.horizon_end().as_micros());
  put<std::uint64_t>(out, trace.records().size());
  for (const auto& r : trace.records()) {
    put<std::uint32_t>(out, r.machine);
    put<std::int64_t>(out, r.start.as_micros());
    put<std::int64_t>(out, r.end.as_micros());
    put<std::uint8_t>(out, static_cast<std::uint8_t>(r.cause));
    put<double>(out, r.host_cpu);
    put<double>(out, r.free_mem_mb);
  }
  if (!out) throw IoError("failed writing binary trace");
}

TraceSet read_trace_binary(std::istream& in, const std::string& source) {
  char magic[sizeof kBinMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kBinMagic, sizeof kBinMagic) != 0) {
    throw IoError(source + ": not an fgcs binary trace (bad magic)");
  }
  BinReader r(in, source);
  const auto machines = r.get<std::uint32_t>("machine count");
  const auto start_us = r.get<std::int64_t>("horizon start");
  const auto end_us = r.get<std::int64_t>("horizon end");
  const auto count = r.get<std::uint64_t>("record count");
  if (machines == 0 || end_us <= start_us) {
    throw IoError(source + ": invalid binary trace metadata");
  }
  TraceSet trace(machines, sim::SimTime::from_micros(start_us),
                 sim::SimTime::from_micros(end_us));
  for (std::uint64_t i = 0; i < count; ++i) {
    UnavailabilityRecord rec;
    rec.machine = r.get<std::uint32_t>("record machine");
    rec.start = sim::SimTime::from_micros(r.get<std::int64_t>("record start"));
    rec.end = sim::SimTime::from_micros(r.get<std::int64_t>("record end"));
    const auto cause = r.get<std::uint8_t>("record cause");
    if (cause < 3 || cause > 5) {
      throw IoError(source + ": invalid cause at byte offset " +
                    std::to_string(r.offset() - 1) + " (record " +
                    std::to_string(i) + ")");
    }
    rec.cause = static_cast<monitor::AvailabilityState>(cause);
    rec.host_cpu = r.get<double>("record host_cpu");
    rec.free_mem_mb = r.get<double>("record free_mem_mb");
    try {
      trace.add(rec);
    } catch (const std::exception& e) {
      throw IoError(source + ": record " + std::to_string(i) +
                    " (ending at byte offset " + std::to_string(r.offset()) +
                    "): " + e.what());
    }
  }
  return trace;
}

LoadReport read_trace_binary_salvage(std::istream& in,
                                     const std::string& source) {
  LoadReport report;
  CsvMeta meta;  // reused as "binary meta" (same fields)
  std::vector<UnavailabilityRecord> recs;

  char magic[sizeof kBinMagic];
  in.read(magic, sizeof magic);
  if (!in && in.gcount() == 0) {
    // Zero-length stream: an empty trace, not damage (a *partial* magic
    // below is still treated as truncation).
    report.trace = TraceSet(1, sim::SimTime::from_micros(0),
                            sim::SimTime::from_micros(1));
    return report;
  }
  if (!in || std::memcmp(magic, kBinMagic, sizeof kBinMagic) != 0) {
    report.truncated = true;
    add_diagnostic(report, source + ": not an fgcs binary trace (bad magic); "
                               "nothing recoverable");
    finish_salvage(report, std::move(recs), meta);
    return report;
  }

  BinReader r(in, source);
  std::uint32_t machines = 0;
  std::int64_t start_us = 0, end_us = 0;
  std::uint64_t count = 0;
  if (!r.try_get(machines) || !r.try_get(start_us) || !r.try_get(end_us) ||
      !r.try_get(count)) {
    report.truncated = true;
    add_diagnostic(report, source + ": header truncated at byte offset " +
                               std::to_string(8 + r.offset()));
    finish_salvage(report, std::move(recs), meta);
    return report;
  }
  if (machines == 0 || end_us <= start_us) {
    add_diagnostic(report, source + ": invalid metadata; inferring from "
                               "records");
  } else {
    meta.machines = machines;
    meta.start_us = start_us;
    meta.end_us = end_us;
  }

  for (std::uint64_t i = 0; i < count; ++i) {
    UnavailabilityRecord rec;
    std::uint8_t cause = 0;
    const std::uint64_t rec_offset = 8 + r.offset();
    std::int64_t rec_start = 0, rec_end = 0;
    if (!r.try_get(rec.machine) || !r.try_get(rec_start) ||
        !r.try_get(rec_end) || !r.try_get(cause) ||
        !r.try_get(rec.host_cpu) || !r.try_get(rec.free_mem_mb)) {
      report.truncated = true;
      add_diagnostic(report, source + ": record " + std::to_string(i) +
                                 " truncated at byte offset " +
                                 std::to_string(rec_offset) + " (" +
                                 std::to_string(count - i) +
                                 " declared record(s) missing)");
      break;
    }
    rec.start = sim::SimTime::from_micros(rec_start);
    rec.end = sim::SimTime::from_micros(rec_end);
    std::string defect;
    if (cause < 3 || cause > 5) {
      defect = "invalid cause byte";
    } else {
      rec.cause = static_cast<monitor::AvailabilityState>(cause);
      defect = record_defect(rec);
    }
    if (!defect.empty()) {
      ++report.skipped;
      add_diagnostic(report, source + ": record " + std::to_string(i) +
                                 " at byte offset " +
                                 std::to_string(rec_offset) + ": " + defect);
      continue;
    }
    recs.push_back(rec);
  }
  finish_salvage(report, std::move(recs), meta);
  return report;
}

void save_trace(const TraceSet& trace, const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  std::ofstream out(path, csv ? std::ios::out : std::ios::out | std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  if (csv) {
    write_trace_csv(trace, out);
  } else {
    write_trace_binary(trace, out);
  }
}

TraceSet load_trace(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  // Format v2 (columnar) files are detected by magic, so v1 and v2 are
  // interchangeable for every consumer of this entry point.
  if (!csv && is_trace_v2(path)) return load_trace_v2(path);
  std::ifstream in(path, csv ? std::ios::in : std::ios::in | std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  return csv ? read_trace_csv(in, path) : read_trace_binary(in, path);
}

LoadReport load_trace_salvage(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  if (!csv && is_trace_v2(path)) return load_trace_v2_salvage(path);
  std::ifstream in(path, csv ? std::ios::in : std::ios::in | std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  return csv ? read_trace_csv_salvage(in, path)
             : read_trace_binary_salvage(in, path);
}

}  // namespace fgcs::trace

#include "fgcs/trace/format_v2.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "fgcs/util/binio.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/io.hpp"

namespace fgcs::trace {

namespace {

using util::load;
using util::store;

constexpr char kMagic[8] = {'F', 'G', 'C', 'S', 'T', 'R', 'C', '2'};
constexpr char kEndMagic[8] = {'F', 'G', 'C', 'S', 'E', 'N', 'D', '2'};
constexpr char kZoneMagic[8] = {'F', 'G', 'C', 'S', 'Z', 'O', 'N', '1'};
constexpr std::uint32_t kBlockMagic = 0x324B4C42;    // "BLK2" little-endian
constexpr std::uint32_t kBlockMagicV3 = 0x334B4C42;  // "BLK3": trailing CRC
constexpr std::size_t kHeaderBytes = 28;
// u64 total_records + u64 footer_offset + trailing magic.
constexpr std::size_t kTrailerBytes = 24;
constexpr std::size_t kFooterEntryBytes = 24;
// Zone section: 4x i64 time bounds + u8 cause bitmask per block.
constexpr std::size_t kZoneEntryBytes = 33;
// Zone magic + u64 entry_count + per-block entries.
constexpr std::uint64_t zone_section_bytes(std::uint64_t blocks) {
  return 16 + kZoneEntryBytes * blocks;
}
constexpr std::size_t kMaxDiagnostics = 8;
// Corruption guard for the salvage scanner: no writer produces blocks
// this large (kDefaultBlockRecords is 4096), so a bigger count is a
// mangled byte, not data.
constexpr std::uint64_t kMaxPlausibleBlock = std::uint64_t{1} << 26;

// Per-record bytes across all six columns (4+8+8+1+8+8).
constexpr std::uint64_t kRecordBytes = 37;
// Offset of the free_mem_mb column (the last one) within a block of n
// records: machine 4n + start 8n + end 8n + cause n + host_cpu 8n.
constexpr std::uint64_t last_column_offset(std::uint64_t n) { return 29 * n; }

bool valid_cause(std::uint8_t cause) { return cause >= 3 && cause <= 5; }

// Zone-map cause bit: bit k covers state S(3+k). An out-of-range byte
// (never produced by the sim, but the format must stay conservative)
// sets every bit so pruning can never skip it.
std::uint8_t cause_bit(std::uint8_t cause) {
  return valid_cause(cause) ? static_cast<std::uint8_t>(1u << (cause - 3))
                            : std::uint8_t{0xFF};
}

// Mirrors io.cpp's semantic validation (kept local: that one lives in
// io.cpp's anonymous namespace).
std::string record_defect(const UnavailabilityRecord& r) {
  if (r.end < r.start) return "episode ends before it starts";
  if (!std::isfinite(r.host_cpu) || r.host_cpu < 0.0 || r.host_cpu > 1.0) {
    return "host_cpu out of [0, 1]";
  }
  if (!std::isfinite(r.free_mem_mb) || r.free_mem_mb < 0.0) {
    return "negative or non-finite free_mem_mb";
  }
  return {};
}

void add_diagnostic(LoadReport& report, std::string message) {
  if (report.diagnostics.size() < kMaxDiagnostics) {
    report.diagnostics.push_back(std::move(message));
  }
}

struct Meta {
  std::uint32_t machines = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;

  bool valid() const { return machines > 0 && end_us > start_us; }
};

// Builds the report's TraceSet from salvaged records, inferring metadata
// from the records when the header was unusable (same policy as the v1
// salvage readers).
void finish_salvage(LoadReport& report, std::vector<UnavailabilityRecord> recs,
                    Meta meta) {
  if (!meta.valid()) {
    report.metadata_inferred = true;
    meta.machines = 1;
    meta.start_us = 0;
    meta.end_us = 1;
    if (!recs.empty()) {
      std::int64_t lo = std::numeric_limits<std::int64_t>::max();
      std::int64_t hi = std::numeric_limits<std::int64_t>::min();
      std::uint32_t max_machine = 0;
      for (const auto& r : recs) {
        lo = std::min(lo, r.start.as_micros());
        hi = std::max(hi, r.end.as_micros());
        max_machine = std::max(max_machine, r.machine);
      }
      meta.machines = max_machine + 1;
      meta.start_us = lo;
      meta.end_us = hi > lo ? hi : lo + 1;
    }
  } else {
    const auto bad = static_cast<std::size_t>(std::count_if(
        recs.begin(), recs.end(),
        [&](const auto& r) { return r.machine >= meta.machines; }));
    if (bad > 0) {
      report.skipped += bad;
      add_diagnostic(report, std::to_string(bad) +
                                 " record(s) reference machines outside the "
                                 "declared machine count");
      recs.erase(std::remove_if(
                     recs.begin(), recs.end(),
                     [&](const auto& r) { return r.machine >= meta.machines; }),
                 recs.end());
    }
  }
  report.trace =
      TraceSet(meta.machines, sim::SimTime::from_micros(meta.start_us),
               sim::SimTime::from_micros(meta.end_us));
  for (const auto& r : recs) report.trace.add(r);
  report.recovered = recs.size();
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceWriterV2

TraceWriterV2::TraceWriterV2(const std::string& path, std::uint32_t machines,
                             sim::SimTime horizon_start,
                             sim::SimTime horizon_end,
                             std::size_t block_records)
    : path_(path), block_records_(block_records) {
  fgcs::require(machines > 0, "TraceWriterV2 needs at least one machine");
  fgcs::require(horizon_end > horizon_start,
                "TraceWriterV2 horizon must be non-empty");
  fgcs::require(block_records_ > 0,
                "TraceWriterV2 block size must be positive");
  out_ = std::make_unique<util::SyncFile>(path);
  pending_.reserve(block_records_);
  std::vector<unsigned char> head;
  head.insert(head.end(), kMagic, kMagic + sizeof kMagic);
  store<std::uint32_t>(head, machines);
  store<std::int64_t>(head, horizon_start.as_micros());
  store<std::int64_t>(head, horizon_end.as_micros());
  out_->write(head.data(), head.size());
  offset_ = kHeaderBytes;
}

TraceWriterV2::~TraceWriterV2() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; callers wanting the error call finish().
  }
}

void TraceWriterV2::append(const UnavailabilityRecord& record) {
  fgcs::require(!finished_, "TraceWriterV2 already finished");
  pending_.push_back(record);
  ++total_;
  if (pending_.size() >= block_records_) flush_block();
}

void TraceWriterV2::append(std::span<const UnavailabilityRecord> records) {
  for (const auto& r : records) append(r);
}

void TraceWriterV2::flush_block() {
  if (pending_.empty()) return;
  const std::size_t n = pending_.size();
  std::vector<unsigned char> buf;
  buf.reserve(8 + kRecordBytes * n);
  store<std::uint32_t>(buf, kBlockMagicV3);
  store<std::uint32_t>(buf, static_cast<std::uint32_t>(n));

  BlockMeta meta;
  meta.offset = offset_ + 8;  // column data starts after magic + count
  meta.count = n;
  meta.min_machine = std::numeric_limits<std::uint32_t>::max();
  meta.max_machine = 0;
  meta.min_start_us = std::numeric_limits<std::int64_t>::max();
  meta.max_start_us = std::numeric_limits<std::int64_t>::min();
  meta.min_end_us = std::numeric_limits<std::int64_t>::max();
  meta.max_end_us = std::numeric_limits<std::int64_t>::min();
  for (const auto& r : pending_) {
    meta.min_machine = std::min(meta.min_machine, r.machine);
    meta.max_machine = std::max(meta.max_machine, r.machine);
    meta.min_start_us = std::min(meta.min_start_us, r.start.as_micros());
    meta.max_start_us = std::max(meta.max_start_us, r.start.as_micros());
    meta.min_end_us = std::min(meta.min_end_us, r.end.as_micros());
    meta.max_end_us = std::max(meta.max_end_us, r.end.as_micros());
    meta.cause_mask |= cause_bit(static_cast<std::uint8_t>(r.cause));
  }
  // One column at a time: the whole point of the SoA layout.
  for (const auto& r : pending_) store<std::uint32_t>(buf, r.machine);
  for (const auto& r : pending_) store<std::int64_t>(buf, r.start.as_micros());
  for (const auto& r : pending_) store<std::int64_t>(buf, r.end.as_micros());
  for (const auto& r : pending_) {
    store<std::uint8_t>(buf, static_cast<std::uint8_t>(r.cause));
  }
  for (const auto& r : pending_) store<double>(buf, r.host_cpu);
  for (const auto& r : pending_) store<double>(buf, r.free_mem_mb);

  out_->write(buf.data(), buf.size());
  // The commit mark: a CRC over (count || columns), written strictly after
  // the data it covers. A crash between the two writes (the kBlockWrite
  // crashpoint below) leaves a block whose checksum is missing or wrong —
  // exactly what the salvage reader treats as torn and truncates away.
  util::crashpoint(util::CrashPoint::kBlockWrite);
  const std::uint32_t crc = util::crc32(buf.data() + 4, buf.size() - 4);
  std::vector<unsigned char> tail;
  store<std::uint32_t>(tail, crc);
  out_->write(tail.data(), tail.size());
  out_->sync(util::Durability::kBlock);
  offset_ += buf.size() + tail.size();
  blocks_.push_back(meta);
  pending_.clear();
}

void TraceWriterV2::finish() {
  if (finished_) return;
  flush_block();
  // Zone section first: it must sit *before* footer_offset so readers
  // that predate it never look at it (their block-extent checks only run
  // up to footer_offset, and their salvage scanner stops at the zone
  // magic because it is not a block magic).
  std::vector<unsigned char> buf;
  buf.reserve(zone_section_bytes(blocks_.size()) + 8 +
              kFooterEntryBytes * blocks_.size() + kTrailerBytes);
  buf.insert(buf.end(), kZoneMagic, kZoneMagic + sizeof kZoneMagic);
  store<std::uint64_t>(buf, blocks_.size());
  for (const auto& b : blocks_) {
    store<std::int64_t>(buf, b.min_start_us);
    store<std::int64_t>(buf, b.max_start_us);
    store<std::int64_t>(buf, b.min_end_us);
    store<std::int64_t>(buf, b.max_end_us);
    store<std::uint8_t>(buf, b.cause_mask);
  }
  const std::uint64_t footer_offset =
      offset_ + zone_section_bytes(blocks_.size());
  store<std::uint64_t>(buf, blocks_.size());
  for (const auto& b : blocks_) {
    store<std::uint64_t>(buf, b.offset);
    store<std::uint64_t>(buf, b.count);
    store<std::uint32_t>(buf, b.min_machine);
    store<std::uint32_t>(buf, b.max_machine);
  }
  store<std::uint64_t>(buf, total_);
  store<std::uint64_t>(buf, footer_offset);
  buf.insert(buf.end(), kEndMagic, kEndMagic + sizeof kEndMagic);
  out_->write(buf.data(), buf.size());
  // Segment seal: the sealed file must survive a crash before its
  // manifest record claims it exists.
  out_->sync(util::Durability::kCommit);
  out_->close();
  finished_ = true;
}

std::uint32_t TraceWriterV2::content_crc() const {
  return out_ ? out_->content_crc() : 0;
}

std::uint64_t TraceWriterV2::bytes_written() const {
  return out_ ? out_->bytes_written() : 0;
}

void write_trace_v2(const TraceSet& trace, const std::string& path) {
  TraceWriterV2 writer(path, trace.machine_count(), trace.horizon_start(),
                       trace.horizon_end());
  writer.append(trace.records());
  writer.finish();
}

// ---------------------------------------------------------------------------
// TraceView

TraceView::TraceView(const std::string& path) : file_(path) {
  // MappedFile owns the bytes; on any validation throw below it unmaps
  // via its destructor.
  const unsigned char* data = file_.data();
  const std::size_t bytes = file_.size();
  if (bytes < kHeaderBytes + 8 + kTrailerBytes ||
      std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    throw IoError(path + ": not an fgcs v2 trace (bad magic)");
  }
  if (std::memcmp(data + bytes - 8, kEndMagic, sizeof kEndMagic) != 0) {
    throw IoError(path + ": v2 trace missing end magic (truncated?)");
  }
  machines_ = load<std::uint32_t>(data + 8);
  start_ = sim::SimTime::from_micros(load<std::int64_t>(data + 12));
  end_ = sim::SimTime::from_micros(load<std::int64_t>(data + 20));
  if (machines_ == 0 || end_ <= start_) {
    throw IoError(path + ": invalid v2 trace metadata");
  }
  const std::uint64_t footer_offset = load<std::uint64_t>(data + bytes - 16);
  if (footer_offset < kHeaderBytes ||
      footer_offset + 8 + kTrailerBytes > bytes) {
    throw IoError(path + ": v2 footer offset out of range");
  }
  const std::uint64_t block_count = load<std::uint64_t>(data + footer_offset);
  if (footer_offset + 8 + block_count * kFooterEntryBytes + kTrailerBytes !=
      bytes) {
    throw IoError(path + ": v2 footer size mismatch");
  }
  total_ = load<std::uint64_t>(data + bytes - 24);
  blocks_.reserve(block_count);
  std::uint64_t sum = 0;
  const unsigned char* entry = data + footer_offset + 8;
  for (std::uint64_t b = 0; b < block_count; ++b, entry += kFooterEntryBytes) {
    Block blk;
    blk.offset = load<std::uint64_t>(entry);
    blk.count = load<std::uint64_t>(entry + 8);
    blk.min_machine = load<std::uint32_t>(entry + 16);
    blk.max_machine = load<std::uint32_t>(entry + 20);
    if (blk.count == 0 || blk.offset < kHeaderBytes + 8 ||
        blk.offset > footer_offset ||
        blk.offset + kRecordBytes * blk.count > footer_offset) {
      throw IoError(path + ": v2 block " + std::to_string(b) +
                    " index entry out of range");
    }
    const std::uint32_t block_magic = load<std::uint32_t>(data + blk.offset - 8);
    if (block_magic == kBlockMagicV3) {
      blk.checksummed = true;
      // Checksummed blocks carry 4 trailing CRC bytes after the columns.
      if (blk.offset + kRecordBytes * blk.count + 4 > footer_offset) {
        throw IoError(path + ": v2 block " + std::to_string(b) +
                      " checksum out of range");
      }
    } else if (block_magic != kBlockMagic) {
      throw IoError(path + ": v2 block " + std::to_string(b) +
                    " missing block magic");
    }
    sum += blk.count;
    blocks_.push_back(blk);
  }
  if (sum != total_) {
    throw IoError(path + ": v2 record total disagrees with block index");
  }
  // Zone section detection: written immediately before the classic
  // footer, so when present it ends exactly at footer_offset. The
  // 8-byte magic plus the entry-count match make a false positive on
  // pre-zone segments (where these bytes are block data) vanishingly
  // unlikely — and a miss just degrades to unpruned scans.
  const std::uint64_t zone_bytes = zone_section_bytes(block_count);
  if (footer_offset >= kHeaderBytes + zone_bytes) {
    const unsigned char* zone = data + (footer_offset - zone_bytes);
    if (std::memcmp(zone, kZoneMagic, sizeof kZoneMagic) == 0 &&
        load<std::uint64_t>(zone + 8) == block_count) {
      has_zones_ = true;
      const unsigned char* ze = zone + 16;
      for (auto& blk : blocks_) {
        blk.zone.min_start_us = load<std::int64_t>(ze);
        blk.zone.max_start_us = load<std::int64_t>(ze + 8);
        blk.zone.min_end_us = load<std::int64_t>(ze + 16);
        blk.zone.max_end_us = load<std::int64_t>(ze + 24);
        blk.zone.cause_mask = ze[32];
        blk.indexed = true;
        ze += kZoneEntryBytes;
      }
    }
  }
}

TraceView::TraceView(const std::string& path, SalvageTag) : file_(path) {
  const unsigned char* data = file_.data();
  const std::size_t bytes = file_.size();
  salvaged_ = true;
  if (bytes < kHeaderBytes || std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    throw IoError(path + ": not an fgcs v2 trace (bad magic)");
  }
  machines_ = load<std::uint32_t>(data + 8);
  start_ = sim::SimTime::from_micros(load<std::int64_t>(data + 12));
  end_ = sim::SimTime::from_micros(load<std::int64_t>(data + 20));
  if (machines_ == 0 || end_ <= start_) {
    throw IoError(path + ": invalid v2 trace metadata");
  }
  // Walk the block chain exactly like load_trace_v2_salvage: keep every
  // committed block, drop a torn final block whole, skip a mid-file
  // checksum mismatch, stop at the first non-block marker (footer or
  // zone section) or EOF.
  std::uint64_t off = kHeaderBytes;
  while (off + 8 <= bytes) {
    const std::uint32_t marker = load<std::uint32_t>(data + off);
    if (marker != kBlockMagic && marker != kBlockMagicV3) break;
    const bool checksummed = marker == kBlockMagicV3;
    const std::uint64_t count = load<std::uint32_t>(data + off + 4);
    if (count == 0 || count > kMaxPlausibleBlock) break;
    const std::uint64_t payload = kRecordBytes * count;
    const std::uint64_t need = 8 + payload + (checksummed ? 4 : 0);
    if (off + need > bytes) break;  // torn final block: dropped whole
    if (checksummed) {
      const std::uint32_t stored =
          load<std::uint32_t>(data + off + 8 + payload);
      const std::uint32_t computed = util::crc32(
          data + off + 4, static_cast<std::size_t>(payload) + 4);
      if (computed != stored) {
        // Uncommitted at EOF → drop and stop; corrupt mid-file → skip.
        off += need;
        continue;
      }
    }
    Block blk;
    blk.offset = off + 8;
    blk.count = count;
    blk.checksummed = checksummed;
    total_ += count;
    blocks_.push_back(blk);
    off += need;
  }
}

TraceView TraceView::open_salvaged(const std::string& path) {
  return TraceView(path, SalvageTag{});
}

bool TraceView::block_indexed(std::size_t block) const {
  return blocks_.at(block).indexed;
}

const TraceView::BlockZone& TraceView::block_zone(std::size_t block) const {
  return blocks_.at(block).zone;
}

TraceView::ColumnSpans TraceView::columns(std::size_t block) const {
  const Block& blk = blocks_.at(block);
  const unsigned char* base = at(blk.offset);
  const std::uint64_t n = blk.count;
  ColumnSpans spans;
  spans.machine = base;
  spans.start_us = base + 4 * n;
  spans.end_us = base + 12 * n;
  spans.cause = base + 20 * n;
  spans.host_cpu = base + 21 * n;
  spans.free_mem = base + 29 * n;
  spans.count = n;
  return spans;
}

std::uint64_t TraceView::block_size(std::size_t block) const {
  return blocks_.at(block).count;
}

std::uint32_t TraceView::block_min_machine(std::size_t block) const {
  return blocks_.at(block).min_machine;
}

std::uint32_t TraceView::block_max_machine(std::size_t block) const {
  return blocks_.at(block).max_machine;
}

UnavailabilityRecord TraceView::record(std::size_t block, std::size_t i) const {
  const Block& blk = blocks_[block];
  const unsigned char* base = at(blk.offset);
  const std::uint64_t n = blk.count;
  UnavailabilityRecord r;
  r.machine = load<std::uint32_t>(base + 4 * i);
  r.start =
      sim::SimTime::from_micros(load<std::int64_t>(base + 4 * n + 8 * i));
  r.end =
      sim::SimTime::from_micros(load<std::int64_t>(base + 12 * n + 8 * i));
  r.cause = static_cast<monitor::AvailabilityState>(base[20 * n + i]);
  r.host_cpu = load<double>(base + 21 * n + 8 * i);
  r.free_mem_mb = load<double>(base + 29 * n + 8 * i);
  return r;
}

std::size_t TraceView::verify_block_checksums() const {
  std::size_t verified = 0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const Block& blk = blocks_[b];
    if (!blk.checksummed) continue;
    const std::uint64_t payload = kRecordBytes * blk.count;
    // The CRC covers (count || columns): start 4 bytes before the column
    // data, where the writer put the count word.
    const std::uint32_t computed =
        util::crc32(at(blk.offset - 4), static_cast<std::size_t>(payload + 4));
    const std::uint32_t stored = load<std::uint32_t>(at(blk.offset + payload));
    if (computed != stored) {
      throw IoError("v2 trace block " + std::to_string(b) +
                    " checksum mismatch (stored " + std::to_string(stored) +
                    ", computed " + std::to_string(computed) + ")");
    }
    ++verified;
  }
  return verified;
}

TraceSet TraceView::to_trace_set() const {
  TraceSet out(machines_, start_, end_);
  out.reserve(total_);
  std::uint64_t index = 0;
  for_each([&](const UnavailabilityRecord& r) {
    if (!valid_cause(static_cast<std::uint8_t>(r.cause))) {
      throw IoError("v2 trace record " + std::to_string(index) +
                    ": invalid cause byte");
    }
    out.add(r);
    ++index;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Strict / salvage loads and detection

bool is_trace_v2(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return false;
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  return in && std::memcmp(magic, kMagic, sizeof kMagic) == 0;
}

TraceSet load_trace_v2(const std::string& path) {
  TraceView view(path);
  view.verify_block_checksums();
  return view.to_trace_set();
}

LoadReport load_trace_v2_salvage(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);

  LoadReport report;
  Meta meta;
  std::vector<UnavailabilityRecord> recs;

  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in && in.gcount() == 0) {
    // Zero-length file: an empty trace, not damage.
    report.trace = TraceSet(1, sim::SimTime::from_micros(0),
                            sim::SimTime::from_micros(1));
    return report;
  }
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    report.truncated = true;
    add_diagnostic(report, path + ": not an fgcs v2 trace (bad magic); "
                               "nothing recoverable");
    finish_salvage(report, std::move(recs), meta);
    return report;
  }

  std::uint32_t machines = 0;
  std::int64_t start_us = 0, end_us = 0;
  unsigned char head[kHeaderBytes - 8];
  in.read(reinterpret_cast<char*>(head), sizeof head);
  if (!in) {
    report.truncated = true;
    add_diagnostic(report, path + ": v2 header truncated");
    finish_salvage(report, std::move(recs), meta);
    return report;
  }
  machines = load<std::uint32_t>(head);
  start_us = load<std::int64_t>(head + 4);
  end_us = load<std::int64_t>(head + 12);
  if (machines == 0 || end_us <= start_us) {
    add_diagnostic(report,
                   path + ": invalid v2 metadata; inferring from records");
  } else {
    meta.machines = machines;
    meta.start_us = start_us;
    meta.end_us = end_us;
  }

  // Walk the block chain without trusting the footer. A clean file ends
  // when the scanner meets the footer (whose leading bytes are not a
  // block magic). Damage classification:
  //   * EOF at a block boundary → truncated_footer (crash after the last
  //     flush, before finish());
  //   * "BLK3" block cut short or with a bad trailing CRC at EOF →
  //     torn_final_block, the whole block is dropped (the checksum is the
  //     commit mark — a block without it never happened);
  //   * "BLK3" checksum mismatch with more data following → media
  //     corruption: skip the block, keep walking (the count word still
  //     frames the chain);
  //   * legacy "BLK2" blocks have no commit mark, so a mid-block cut
  //     falls back to the old last-column heuristic (and still counts as
  //     torn_final_block).
  std::uint64_t block_index = 0;
  std::vector<unsigned char> buf;
  // Decodes `usable` leading records of an n-record column block at
  // `base`, appending the semantically valid ones.
  const auto decode_records = [&](const unsigned char* base, std::uint64_t n,
                                  std::uint64_t usable) {
    for (std::uint64_t i = 0; i < usable; ++i) {
      UnavailabilityRecord r;
      r.machine = load<std::uint32_t>(base + 4 * i);
      r.start =
          sim::SimTime::from_micros(load<std::int64_t>(base + 4 * n + 8 * i));
      r.end =
          sim::SimTime::from_micros(load<std::int64_t>(base + 12 * n + 8 * i));
      const std::uint8_t cause = base[20 * n + i];
      r.host_cpu = load<double>(base + 21 * n + 8 * i);
      r.free_mem_mb = load<double>(base + 29 * n + 8 * i);
      std::string defect;
      if (!valid_cause(cause)) {
        defect = "invalid cause byte";
      } else {
        r.cause = static_cast<monitor::AvailabilityState>(cause);
        defect = record_defect(r);
      }
      if (!defect.empty()) {
        ++report.skipped;
        add_diagnostic(report, path + ": v2 block " +
                                   std::to_string(block_index) + " record " +
                                   std::to_string(i) + ": " + defect);
        continue;
      }
      recs.push_back(r);
    }
  };
  for (;;) {
    std::uint32_t marker = 0;
    in.read(reinterpret_cast<char*>(&marker), sizeof marker);
    if (!in) {
      // EOF at a block boundary: every block committed, only the footer
      // never made it to disk.
      report.truncated = true;
      report.truncated_footer = true;
      add_diagnostic(report, path + ": v2 footer missing (file ends after " +
                                 std::to_string(block_index) + " block(s))");
      break;
    }
    if (marker != kBlockMagic && marker != kBlockMagicV3) {
      // Footer (or corruption). Either way the block chain is done — every
      // complete block has already been recovered.
      break;
    }
    const bool checksummed = marker == kBlockMagicV3;
    std::uint32_t count = 0;
    in.read(reinterpret_cast<char*>(&count), sizeof count);
    if (!in) {
      // Cut between the magic and the count: a torn block with nothing
      // recoverable in it.
      report.truncated = true;
      report.torn_final_block = true;
      add_diagnostic(report, path + ": v2 block " +
                                 std::to_string(block_index) +
                                 " torn before its size word");
      break;
    }
    if (count == 0 || count > kMaxPlausibleBlock) {
      report.truncated = true;
      add_diagnostic(report, path + ": v2 block " +
                                 std::to_string(block_index) +
                                 " has an implausible size");
      break;
    }
    const std::uint64_t n = count;
    buf.resize(kRecordBytes * n + (checksummed ? 4 : 0));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const auto have = static_cast<std::uint64_t>(in.gcount());
    if (checksummed) {
      if (have < buf.size()) {
        // Torn block: its commit mark (the trailing CRC) is missing, so
        // nothing in it counts — drop it whole, like a database drops an
        // uncommitted transaction.
        report.truncated = true;
        report.torn_final_block = true;
        add_diagnostic(report, path + ": v2 block " +
                                   std::to_string(block_index) + " torn: " +
                                   std::to_string(n) + " uncommitted record(s) "
                                   "discarded");
        break;
      }
      const std::uint32_t stored = load<std::uint32_t>(buf.data() + n * kRecordBytes);
      std::uint32_t computed = util::crc32(&count, sizeof count);
      computed = util::crc32(buf.data(), n * kRecordBytes, computed);
      if (computed != stored) {
        if (in.peek() == std::char_traits<char>::eof()) {
          // Bad checksum at the very end of the file: a torn final write
          // (the CRC bytes themselves were cut or scrambled mid-flush).
          report.truncated = true;
          report.torn_final_block = true;
          add_diagnostic(report, path + ": v2 final block " +
                                     std::to_string(block_index) +
                                     " checksum mismatch: " +
                                     std::to_string(n) + " uncommitted "
                                     "record(s) discarded");
          break;
        }
        // Bad checksum mid-file: media corruption, not a crash. The size
        // word still frames the chain, so skip this block and keep
        // scanning — later blocks are independent.
        report.skipped += n;
        add_diagnostic(report, path + ": v2 block " +
                                   std::to_string(block_index) +
                                   " checksum mismatch mid-file: " +
                                   std::to_string(n) + " record(s) skipped");
        ++block_index;
        continue;
      }
      decode_records(buf.data(), n, n);
      ++block_index;
      continue;
    }
    // Legacy "BLK2" block: no commit mark. A partial block falls back to
    // the last-column heuristic — record i is whole iff its final column
    // element (free_mem_mb, at 29n + 8i .. 29n + 8i+8) fits.
    std::uint64_t usable = n;
    if (have < buf.size()) {
      report.truncated = true;
      report.torn_final_block = true;
      usable = have > last_column_offset(n)
                   ? std::min<std::uint64_t>((have - last_column_offset(n)) / 8,
                                             n)
                   : 0;
      add_diagnostic(report,
                     path + ": v2 block " + std::to_string(block_index) +
                         " truncated: " + std::to_string(n - usable) + " of " +
                         std::to_string(n) + " record(s) lost");
    }
    decode_records(buf.data(), n, usable);
    if (report.truncated) break;
    ++block_index;
  }
  finish_salvage(report, std::move(recs), meta);
  return report;
}

}  // namespace fgcs::trace

// Trace serialization: a human-readable CSV dialect and a compact binary
// format. Both round-trip TraceSets exactly (times are integral
// microseconds).
//
// CSV layout:
//   # fgcs-trace v1 machines=<N> start_us=<S> end_us=<E>
//   machine,start_us,end_us,cause,host_cpu,free_mem_mb
//   0,120000000,180000000,S3,0.84,512
//   ...
//
// Binary layout (little-endian):
//   magic "FGCSTRC1", u32 machines, i64 start_us, i64 end_us, u64 count,
//   then per record: u32 machine, i64 start_us, i64 end_us, u8 cause,
//   f64 host_cpu, f64 free_mem_mb.
#pragma once

#include <iosfwd>
#include <string>

#include "fgcs/trace/trace_set.hpp"

namespace fgcs::trace {

void write_trace_csv(const TraceSet& trace, std::ostream& out);
TraceSet read_trace_csv(std::istream& in);

void write_trace_binary(const TraceSet& trace, std::ostream& out);
TraceSet read_trace_binary(std::istream& in);

/// File-path conveniences; format chosen by extension (".csv" otherwise
/// binary). Throw IoError on failure.
void save_trace(const TraceSet& trace, const std::string& path);
TraceSet load_trace(const std::string& path);

}  // namespace fgcs::trace

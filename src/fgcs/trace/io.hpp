// Trace serialization: a human-readable CSV dialect and a compact binary
// format. Both round-trip TraceSets exactly (times are integral
// microseconds).
//
// CSV layout:
//   # fgcs-trace v1 machines=<N> start_us=<S> end_us=<E>
//   machine,start_us,end_us,cause,host_cpu,free_mem_mb
//   0,120000000,180000000,S3,0.84,512
//   ...
//
// Binary layout (little-endian):
//   magic "FGCSTRC1", u32 machines, i64 start_us, i64 end_us, u64 count,
//   then per record: u32 machine, i64 start_us, i64 end_us, u8 cause,
//   f64 host_cpu, f64 free_mem_mb.
//
// Strict readers throw IoError at the first defect, with the source name
// plus the CSV line number / binary byte offset of the failure. Salvage
// readers never throw on damaged input: they recover every well-formed
// record (all records preceding a truncation point, and any parseable
// record after a localized corruption) and return a LoadReport describing
// what was skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fgcs/trace/trace_set.hpp"

namespace fgcs::trace {

void write_trace_csv(const TraceSet& trace, std::ostream& out);
void write_trace_binary(const TraceSet& trace, std::ostream& out);

/// Strict readers: throw IoError (with `source`, and line/offset context)
/// on any malformed input.
TraceSet read_trace_csv(std::istream& in,
                        const std::string& source = "<csv>");
TraceSet read_trace_binary(std::istream& in,
                           const std::string& source = "<binary>");

/// Result of a salvage read: the recovered trace plus damage diagnostics.
struct LoadReport {
  TraceSet trace;
  /// Records recovered into `trace`.
  std::size_t recovered = 0;
  /// Malformed or invalid records dropped.
  std::size_t skipped = 0;
  /// Input ended before the declared record count / mid-record.
  bool truncated = false;
  /// v2 segments only: the final block of the chain was cut mid-write
  /// (missing bytes, or a block checksum that does not match) — the
  /// signature of a crash during a block flush. The torn block's records
  /// are dropped; everything up to the last committed block is recovered.
  bool torn_final_block = false;
  /// v2 segments only: the block chain ends cleanly but the footer and
  /// trailer never made it to disk — the signature of a crash between
  /// the last block flush and finish(). Nothing is lost but the index.
  /// Damage with neither flag set (bad magic mid-file, a checksum
  /// mismatch with more data following) points at media corruption, not
  /// a crash.
  bool truncated_footer = false;
  /// Header was unusable; machines/horizon were inferred from the
  /// recovered records instead.
  bool metadata_inferred = false;
  /// Human-readable descriptions of the first few defects (capped).
  std::vector<std::string> diagnostics;

  bool clean() const {
    return skipped == 0 && !truncated && !metadata_inferred;
  }
};

/// Salvage readers: recover all well-formed records from damaged input.
/// They do not throw on truncation/corruption — defects are reported in
/// the LoadReport. An input so damaged that nothing is recoverable yields
/// an empty single-machine trace with `recovered == 0`.
LoadReport read_trace_csv_salvage(std::istream& in,
                                  const std::string& source = "<csv>");
LoadReport read_trace_binary_salvage(std::istream& in,
                                     const std::string& source = "<binary>");

/// File-path conveniences; format chosen by extension (".csv" otherwise
/// binary). Throw IoError on failure.
void save_trace(const TraceSet& trace, const std::string& path);
TraceSet load_trace(const std::string& path);

/// Salvage load: never throws on damaged content (only on an unopenable
/// path).
LoadReport load_trace_salvage(const std::string& path);

}  // namespace fgcs::trace

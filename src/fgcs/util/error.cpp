#include "fgcs/util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace fgcs::detail {

void assert_fail(const char* expr, std::source_location loc) {
  std::fprintf(stderr, "FGCS_ASSERT failed: %s at %s:%u (%s)\n", expr,
               loc.file_name(), loc.line(), loc.function_name());
  std::abort();
}

void require_fail(const std::string& message) {
  throw ConfigError(message);
}

}  // namespace fgcs::detail

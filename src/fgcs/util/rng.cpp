#include "fgcs/util/rng.hpp"

#include <numbers>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
  // An all-zero state is the one invalid state of xoshiro; SplitMix64 cannot
  // emit four consecutive zeros for any seed, but keep the guard explicit.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = acc;
}

std::uint64_t RngStream::derive(std::uint64_t seed,
                                std::initializer_list<std::uint64_t> keys) {
  std::uint64_t h = mix_key(0x6a09e667f3bcc909ULL, seed);
  for (std::uint64_t k : keys) h = mix_key(h, k);
  return h;
}

std::uint64_t RngStream::uniform_index(std::uint64_t n) {
  FGCS_ASSERT(n > 0);
  // Lemire-style rejection on the top bits.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = gen_.next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  FGCS_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in our uses
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double RngStream::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double RngStream::exponential(double mean) {
  FGCS_ASSERT(mean > 0.0);
  double u = 1.0 - uniform();  // (0,1]
  return -mean * std::log(u);
}

}  // namespace fgcs::util

// Deterministic random number generation for fgcs simulations.
//
// All stochastic components in fgcs are seeded explicitly. Reproducibility
// across thread counts is achieved with *keyed substreams*: a root seed is
// combined with a small vector of stream keys (machine id, day index,
// purpose tag, ...) through SplitMix64 to derive an independent Xoshiro256**
// state. Two streams with different keys are statistically independent; the
// same (seed, keys) always yields the same sequence.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <limits>

namespace fgcs::util {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used for seeding and for
/// hashing stream keys; not used directly as a simulation generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes a key into a running hash; used to derive substream seeds.
constexpr std::uint64_t mix_key(std::uint64_t h, std::uint64_t key) {
  SplitMix64 sm(h ^ (key + 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

/// Xoshiro256** — the workhorse generator. Satisfies (most of) the C++
/// UniformRandomBitGenerator requirements so it can drive <random>
/// distributions, though fgcs provides its own inverse-CDF samplers for
/// cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Jump function: advances the state by 2^128 steps (for manual
  /// substream splitting; prefer keyed RngStream construction).
  void jump();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// A keyed random stream: root seed + key path -> independent generator.
///
/// Typical use:
///   RngStream rng(config.seed, {kMachineTag, machine_id, day_index});
///   double u = rng.uniform();
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : gen_(seed) {}

  RngStream(std::uint64_t seed, std::initializer_list<std::uint64_t> keys)
      : gen_(derive(seed, keys)) {}

  /// Derives the substream seed for (seed, keys) without constructing.
  static std::uint64_t derive(std::uint64_t seed,
                              std::initializer_list<std::uint64_t> keys);

  /// Creates a child stream keyed off this stream's next output.
  RngStream child(std::uint64_t key) {
    return RngStream(mix_key(gen_.next(), key));
  }

  std::uint64_t next_u64() { return gen_.next(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no <random>).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given mean (mean = 1/rate).
  double exponential(double mean);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  Xoshiro256 gen_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace fgcs::util

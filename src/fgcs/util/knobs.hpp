// vmcache-style runtime knobs: environment-or-default parsing plus
// thread-to-core pinning.
//
// The fgcs performance knobs are plain environment variables so runs
// stay reproducible from the command line alone:
//
//   FGCS_THREADS      worker count for the global pool (parallel.hpp)
//   FGCS_PIN_THREADS  pin pool workers to cores round-robin
//   FGCS_HUGE_PAGES   back large arena chunks with transparent huge
//                     pages (arena.hpp)
//
// None of these knobs may change simulation results — they are
// throughput-only. lint_determinism.sh keeps wall-clock and libc RNG
// out of this file like the rest of the sim core.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fgcs::util {

/// Returns the integer value of environment variable `name`, or
/// `fallback` when unset or malformed. A malformed value (non-numeric,
/// negative, trailing junk) additionally warns once per variable to
/// stderr — a typo'd knob must not silently behave like an unset one.
std::uint64_t env_or(const char* name, std::uint64_t fallback);

/// True when `name` is set to anything other than "" or "0".
bool env_flag(const char* name);

/// Pins the calling thread to `core` (modulo the hardware thread
/// count). Returns false when the platform does not support affinity
/// or the call fails; pinning failures are never fatal.
bool pin_thread_to_core(std::size_t core);

}  // namespace fgcs::util

#include "fgcs/util/knobs.hpp"

#include <cstdlib>
#include <cstring>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fgcs::util {

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0' || *value == '-') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

bool pin_thread_to_core(std::size_t core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace fgcs::util

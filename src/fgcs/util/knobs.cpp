#include "fgcs/util/knobs.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fgcs::util {

namespace {

// A malformed knob silently behaving like an unset one cost real
// debugging time (FGCS_THREADS=abc ran single-threaded without a word);
// warn to stderr, but only once per variable so hot callers can re-read
// knobs freely.
void warn_malformed_once(const char* name, const char* value,
                         std::uint64_t fallback) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!warned.insert(name).second) return;
  std::fprintf(stderr,
               "fgcs: ignoring malformed %s='%s' (expected an unsigned "
               "integer); using the default %llu\n",
               name, value, static_cast<unsigned long long>(fallback));
}

}  // namespace

std::uint64_t env_or(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  // Unset and empty mean "use the default" — that is not an error.
  if (value == nullptr || *value == '\0') return fallback;
  if (*value == '-') {
    warn_malformed_once(name, value, fallback);
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    warn_malformed_once(name, value, fallback);
    return fallback;
  }
  return static_cast<std::uint64_t>(v);
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

bool pin_thread_to_core(std::size_t core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace fgcs::util

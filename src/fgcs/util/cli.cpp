#include "fgcs/util/cli.hpp"

#include <stdexcept>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

CliArgs CliArgs::parse(const std::vector<std::string>& tokens) {
  CliArgs args;
  std::size_t i = 0;
  if (!tokens.empty() && tokens[0].rfind("--", 0) != 0) {
    args.command_ = tokens[0];
    i = 1;
  }
  for (; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) == 0) {
      const std::string key = tok.substr(2);
      fgcs::require(!key.empty(), "empty option name '--'");
      // "--key=value" binds inline; otherwise the next non-option token
      // is consumed as the value.
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        fgcs::require(eq > 0, "empty option name in '" + tok + "'");
        args.options_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < tokens.size() &&
                 tokens[i + 1].rfind("--", 0) != 0) {
        args.options_[key] = tokens[++i];
      } else {
        args.flags_[key] = true;
      }
    } else {
      args.positional_.push_back(tok);
    }
  }
  return args;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    fgcs::require(pos == it->second.size(),
                  "malformed integer for --" + key + ": " + it->second);
    return v;
  } catch (const std::invalid_argument&) {
    throw ConfigError("malformed integer for --" + key + ": " + it->second);
  } catch (const std::out_of_range&) {
    throw ConfigError("integer out of range for --" + key + ": " +
                      it->second);
  }
}

bool CliArgs::has_flag(const std::string& key) const {
  return flags_.count(key) > 0 || options_.count(key) > 0;
}

}  // namespace fgcs::util

// Binary-file building blocks shared by the columnar on-disk formats.
//
// The trace-v2 segment format (trace/format_v2.hpp) and the metrics
// time-series format (obs/timeseries.hpp) use the same byte idiom:
// little-endian scalars memcpy'd in and out of byte buffers, and a
// read-only mmap of the whole file with a buffered-read fallback for
// filesystems where mmap fails. Those pieces live here so both formats —
// which sit in layers that cannot include each other — share one
// implementation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fgcs::util {

/// Appends the raw bytes of `value` to `buf` (native little-endian, the
/// byte order every fgcs on-disk format declares).
template <typename T>
void store(std::vector<unsigned char>& buf, T value) {
  const auto* p = reinterpret_cast<const unsigned char*>(&value);
  buf.insert(buf.end(), p, p + sizeof value);
}

/// Reads a `T` from `p` without alignment assumptions.
template <typename T>
T load(const unsigned char* p) {
  T value;
  std::memcpy(&value, p, sizeof value);
  return value;
}

/// Read-only view of a whole file. The file is mmap()ed when possible;
/// on exotic filesystems (or zero-size files) it falls back to a plain
/// buffered read so callers always get a contiguous byte range. Throws
/// IoError when the file cannot be opened, stat'ed, or read.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return bytes_; }
  const unsigned char* at(std::uint64_t offset) const {
    return data_ + offset;
  }

  /// True when backed by an mmap (false: buffered fallback).
  bool memory_mapped() const { return mapped_; }

  /// Drops this mapping's resident pages (madvise MADV_DONTNEED) so a
  /// scan over many large files keeps peak RSS at O(one file), not
  /// O(all files). The data stays readable — touched pages simply fault
  /// back in from the page cache. No-op on the buffered fallback and on
  /// madvise failure.
  void release_pages() const noexcept;

 private:
  void unmap() noexcept;

  const unsigned char* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> fallback_;
};

}  // namespace fgcs::util

// Durable-file building blocks for crash-tolerant writers.
//
// The checkpoint manifest (recover/manifest.hpp) and the columnar segment
// writers (trace/format_v2.hpp, obs/timeseries.hpp) share one durability
// idiom:
//
//   * every byte funnels through an fd-backed SyncFile that keeps a
//     running CRC-32 of the stream, so a writer knows its own file's
//     content hash without re-reading it;
//   * commit points fsync according to one process-wide policy knob,
//     FGCS_DURABILITY (none | commit | block), so tests and benches can
//     trade durability for speed without code changes; and
//   * whole-file replacement goes through write-to-temp + rename — with
//     temp and parent-directory fsyncs per policy (atomic_replace_file) —
//     so a reader never observes a half-written manifest: it sees the
//     old file or the new one, nothing in between.
//
// The crashpoint() hook is the test seam for all of it: the crash
// harness (tools/fgcs_crashtest.cpp) sets FGCS_CRASH_AFTER_* and the
// process SIGKILLs itself mid-block, between a segment seal and its
// manifest record, or right after a manifest rename — the exact torn
// states the recovery path must survive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fgcs::util {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `n` bytes, continuing from
/// `seed` (pass a previous return value to checksum a stream in pieces;
/// start from the default for a fresh sum).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// CRC-32 of a whole file. Throws IoError when the file cannot be read.
std::uint32_t file_crc32(const std::string& path);

/// How hard the durable writers try to survive power loss / SIGKILL.
/// Selected process-wide by FGCS_DURABILITY (accepts the names below or
/// 0/1/2); unknown values warn once to stderr and fall back to the
/// default, kCommit.
enum class Durability : int {
  /// Never fsync. Torn-write *detection* (block checksums, manifest CRC)
  /// still works, but after an OS crash recent commits may be lost.
  kNone = 0,
  /// Fsync at commit points only: segment seal and the sweep-final
  /// manifest sync. Intermediate manifest rewrites are atomic renames
  /// without fsync — the page cache survives process death, so a SIGKILL
  /// at any instant still loses at most the work since the last commit;
  /// only an *OS* crash can roll the claim trail back further (resume
  /// then re-runs those shards). The default.
  kCommit = 1,
  /// Additionally fsync every block flush and every manifest rewrite —
  /// every sealed block and every committed shard survive even an OS
  /// crash. The paranoid (and slowest) level.
  kBlock = 2,
};

/// The process-wide FGCS_DURABILITY policy (parsed once, cached).
Durability durability_level();

/// Canonical name of a level ("none", "commit", "block").
const char* durability_name(Durability level);

/// Write-only fd-backed file with a running content CRC. No internal
/// buffering: callers (the block writers) already batch bytes, so each
/// write() is one syscall. Throws IoError on any failure.
class SyncFile {
 public:
  /// Creates/truncates `path` for writing.
  explicit SyncFile(const std::string& path);
  ~SyncFile();

  SyncFile(const SyncFile&) = delete;
  SyncFile& operator=(const SyncFile&) = delete;

  void write(const void* data, std::size_t n);

  /// fsync(2) the file. No-op when the policy says so (`only_at` is the
  /// weakest level at which this sync point applies).
  void sync(Durability only_at);

  /// Closes the fd (idempotent); further writes are a logic error.
  void close();

  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return bytes_; }
  /// CRC-32 of everything written so far.
  std::uint32_t content_crc() const { return crc_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint32_t crc_ = 0;
};

/// Atomically replaces `path` with `bytes`: writes `path`.tmp, fsyncs it
/// (per policy), rename(2)s over `path`, then fsyncs the parent
/// directory so the rename itself is durable. Readers racing the replace
/// see the complete old or complete new content, never a prefix.
void atomic_replace_file(const std::string& path, const void* data,
                         std::size_t n, Durability level = durability_level());

/// fsync the directory containing `path` (making a rename/creation in it
/// durable). Best-effort: returns false when the platform refuses.
bool fsync_parent_dir(const std::string& path);

// ---------------------------------------------------------------------------
// Crash injection (test-only; no-ops unless FGCS_CRASH_AFTER_* is set)

/// Named fault points the durable-write paths pass through.
enum class CrashPoint : int {
  /// Between a block's column bytes and its trailing checksum — killing
  /// here leaves a torn (uncommitted) final block.
  kBlockWrite = 0,
  /// After a shard's segment is sealed but before its manifest record —
  /// killing here loses the shard from the manifest but not the disk.
  kShardCommit = 1,
  /// Right after the manifest rename lands — killing here must leave a
  /// fully consistent resume point.
  kManifestWrite = 2,
};

/// SIGKILLs the current process when the matching FGCS_CRASH_AFTER_*
/// environment knob (FGCS_CRASH_AFTER_BLOCK_WRITES,
/// FGCS_CRASH_AFTER_SHARD_COMMITS, FGCS_CRASH_AFTER_MANIFEST_WRITES) is
/// set to N and this is the Nth crossing of that point. The environment
/// is re-read on every crossing (the points are rare — per block / per
/// shard, never per record) so a fork()ed harness child can arm a knob
/// after the parent already ran clean sweeps.
void crashpoint(CrashPoint point);

/// Resets the crossing counters (between harness iterations in-process;
/// a fork()ed child inherits the parent's counts otherwise).
void reset_crashpoints();

}  // namespace fgcs::util

// A move-only callable wrapper with small-buffer storage.
//
// InlineFunction<R(Args...), Capacity> stores any callable whose size is
// at most Capacity bytes directly inside the wrapper — no heap allocation
// on construction, move, or invocation. Larger callables fall back to a
// single heap allocation (is_inline() reports which path was taken, so
// hot paths can count spills). This is the callback currency of the
// simulation event loop and the thread pool: scheduling an event or
// submitting a task must not allocate in steady state.
//
// Differences from std::function, chosen deliberately:
//   * move-only (no copy): callbacks fire once and captures are often
//     move-only anyway;
//   * no target_type/target introspection;
//   * invoking an empty InlineFunction is undefined (assert in debug)
//     rather than throwing std::bad_function_call.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vt_ = &kInlineVtable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVtable<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the held callable (and frees its captures) immediately.
  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  /// True when the held callable lives in the inline buffer (empty
  /// wrappers report true: they certainly did not allocate).
  bool is_inline() const { return vt_ == nullptr || vt_->inline_storage; }

  R operator()(Args... args) const {
    FGCS_ASSERT(vt_ != nullptr);
    return vt_->invoke(const_cast<unsigned char*>(storage_),
                       std::forward<Args>(args)...);
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to);  // move-construct + destroy from
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable kInlineVtable{
      [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      },
      [](void* s) { static_cast<D*>(s)->~D(); },
      true,
  };

  template <typename D>
  static constexpr VTable kHeapVtable{
      [](void* s, Args&&... args) -> R {
        return (**static_cast<D**>(s))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        ::new (to) D*(*static_cast<D**>(from));
      },
      [](void* s) { delete *static_cast<D**>(s); },
      false,
  };

  void take(InlineFunction& other) {
    if (other.vt_ == nullptr) return;
    other.vt_->relocate(other.storage_, storage_);
    vt_ = other.vt_;
    other.vt_ = nullptr;
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace fgcs::util

#include "fgcs/util/binio.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open for reading: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat: " + path);
  }
  bytes_ = static_cast<std::size_t>(st.st_size);
  if (bytes_ > 0) {
    void* map = ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      data_ = static_cast<const unsigned char*>(map);
      mapped_ = true;
    }
  }
  if (!mapped_) {
    fallback_.resize(bytes_);
    std::size_t got = 0;
    while (got < bytes_) {
      const ::ssize_t n = ::read(fd, fallback_.data() + got, bytes_ - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    if (got != bytes_) {
      ::close(fd);
      throw IoError("cannot read: " + path);
    }
    data_ = fallback_.data();
  }
  ::close(fd);  // the mapping (or buffer) outlives the descriptor
}

MappedFile::~MappedFile() { unmap(); }

void MappedFile::release_pages() const noexcept {
  if (mapped_ && data_ != nullptr && bytes_ > 0) {
    ::madvise(const_cast<unsigned char*>(data_), bytes_, MADV_DONTNEED);
  }
}

void MappedFile::unmap() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), bytes_);
  }
  data_ = nullptr;
  mapped_ = false;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  }
  return *this;
}

}  // namespace fgcs::util

// Minimal CSV reading/writing for trace files and experiment outputs.
//
// The dialect is deliberately simple: comma separator, quotes around fields
// containing commas/quotes/newlines, '\n' record terminator, first record
// is the header. This matches what the trace readers/writers emit and is
// enough for interchange with pandas/R for offline plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fgcs::util {

/// Serializes rows of string fields as CSV to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are quoted only when necessary.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: builds a row from heterogeneous printable values.
  template <typename... Ts>
  void write(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    write_row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  static std::string to_field(double v);
  static std::string to_field(float v) { return to_field(double{v}); }
  static std::string to_field(std::int64_t v);
  static std::string to_field(std::uint64_t v);
  static std::string to_field(int v) { return to_field(std::int64_t{v}); }
  static std::string to_field(unsigned v) { return to_field(std::uint64_t{v}); }
  static std::string to_field(bool v) { return v ? "1" : "0"; }

  std::ostream& out_;
};

/// Parses CSV from an istream. Header row is exposed separately.
class CsvReader {
 public:
  /// Reads everything up-front; throws IoError on malformed input.
  explicit CsvReader(std::istream& in);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Index of a header column; throws IoError if absent.
  std::size_t column(std::string_view name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses one CSV record (no trailing newline). Exposed for tests.
std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace fgcs::util

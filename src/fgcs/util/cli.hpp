// Minimal command-line argument parsing for the fgcs tools.
//
// Grammar: `prog <command> [positional...] [--key value | --key=value |
// --flag]...`. An option token starting with "--" binds an inline
// "=value" if present; otherwise it consumes the next token as its value
// unless that token also starts with "--" (then it is a boolean flag).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fgcs::util {

class CliArgs {
 public:
  static CliArgs parse(int argc, const char* const* argv);
  static CliArgs parse(const std::vector<std::string>& tokens);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has_option(const std::string& key) const {
    return options_.count(key) > 0;
  }

  /// Option value or fallback.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Integer option; throws ConfigError on a malformed value.
  long get_int(const std::string& key, long fallback) const;

  /// True when the key appeared, with or without a value.
  bool has_flag(const std::string& key) const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
  std::map<std::string, bool> flags_;
};

}  // namespace fgcs::util

// Bump/arena allocation for per-shard simulation scratch.
//
// Arena hands out aligned pointers from geometrically grown chunks;
// reset() rewinds to the first chunk without returning memory to the
// OS, so a warmed-up arena satisfies the same allocation pattern with
// zero heap traffic. This is what makes a steady-state machine-day in
// the columnar sim core allocation-free: the fleet engine keeps one
// Arena per shard, resets it per machine, and every transient vector
// (trajectory points, downtimes, detector transitions/episodes/gaps,
// overlay scratch) draws from it.
//
// ArenaAllocator<T> adapts an Arena to the standard allocator
// interface. A null arena falls back to the plain heap, so
// arena-backed containers inside long-lived objects keep working when
// no arena is supplied. ArenaVector<T> is the container alias the sim
// core uses.
//
// With FGCS_HUGE_PAGES set (see knobs.hpp), chunks of at least 2 MiB
// are mapped with mmap + madvise(MADV_HUGEPAGE), vmcache-style;
// otherwise chunks come from operator new.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace fgcs::util {

/// A chunked bump allocator. Not thread-safe: one Arena per shard.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t initial_chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; grows by appending a chunk when the active
  /// one is full. Zero-byte requests return a valid unique pointer.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (!chunks_.empty()) {
      Chunk& c = chunks_[active_];
      const std::size_t off = aligned_offset(c, align);
      if (off + bytes <= c.capacity && off + bytes >= off) {
        c.used = off + bytes;
        return c.base + off;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Rewinds to empty. Chunks are retained for reuse, so the next pass
  /// over the same allocation pattern touches the heap zero times.
  void reset();

  /// Sum of chunk capacities currently held.
  std::size_t bytes_reserved() const;
  /// Bytes bumped since the last reset (includes alignment padding).
  std::size_t bytes_used() const;
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t capacity = 0;
    std::size_t used = 0;
    bool huge = false;
  };

  // Offset into `c` of the next address aligned to `align` in absolute
  // terms (the chunk base itself is only max_align_t-aligned).
  static std::size_t aligned_offset(const Chunk& c, std::size_t align) {
    const auto addr = reinterpret_cast<std::uintptr_t>(c.base) + c.used;
    const auto aligned = (addr + align - 1) & ~(std::uintptr_t{align} - 1);
    return c.used + static_cast<std::size_t>(aligned - addr);
  }

  Chunk new_chunk(std::size_t min_bytes);
  void release_chunk(Chunk& c);
  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // index of the chunk being bumped
  std::size_t next_chunk_bytes_ = 0;
};

/// Standard-allocator adapter over Arena. A default-constructed (null)
/// ArenaAllocator uses the plain heap, so container members typed on it
/// behave like ordinary std containers until an arena is supplied.
///
/// Allocators propagate on copy/move/swap and compare by arena pointer,
/// so moving an arena-backed vector steals its buffer (no element-wise
/// reallocation into the destination's arena).
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    // Arena memory is reclaimed wholesale by Arena::reset().
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

 private:
  Arena* arena_ = nullptr;
};

template <class T, class U>
bool operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) {
  return a.arena() == b.arena();
}
template <class T, class U>
bool operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) {
  return !(a == b);
}

/// The vector alias the columnar sim core builds on.
template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace fgcs::util

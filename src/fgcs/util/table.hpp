// Fixed-width text table rendering for the reproduction binaries.
//
// The bench targets print paper tables/figure series to stdout; TextTable
// keeps them aligned and readable without any external dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fgcs::util {

/// Accumulates rows of cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a fully-formed row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats heterogeneous values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(cell(values)), ...);
    add_row(std::move(cells));
  }

  /// Renders the table with a header underline.
  std::string str() const;

  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(double v);
  static std::string cell(std::int64_t v) { return std::to_string(v); }
  static std::string cell(std::uint64_t v) { return std::to_string(v); }
  static std::string cell(int v) { return std::to_string(v); }
  static std::string cell(unsigned v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming noise.
std::string format_double(double v, int decimals = 3);

/// Formats a fraction as a percentage string, e.g. 0.0525 -> "5.25%".
std::string format_percent(double fraction, int decimals = 1);

/// Formats seconds as "Hh MMm" / "MMm SSs" as appropriate.
std::string format_duration_s(double seconds);

}  // namespace fgcs::util

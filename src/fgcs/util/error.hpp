// Error types and invariant checking for the fgcs library.
//
// Configuration errors (bad user input to constructors / config structs)
// throw ConfigError. Internal invariant breaches use FGCS_ASSERT, which is
// active in all build types: simulation correctness bugs must not be
// silently ignored in Release runs that produce paper numbers.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace fgcs {

/// Thrown when a user-supplied configuration value is invalid.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an I/O operation (trace file read/write) fails.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, std::source_location loc);
[[noreturn]] void require_fail(const std::string& message);
}  // namespace detail

/// Validates a configuration predicate; throws ConfigError on failure.
inline void require(bool ok, const std::string& message) {
  if (!ok) detail::require_fail(message);
}

/// Literal-message overload: the common `require(ok, "...")` call builds
/// no std::string on the success path, keeping checks in per-machine hot
/// loops allocation-free.
inline void require(bool ok, const char* message) {
  if (!ok) detail::require_fail(message);
}

}  // namespace fgcs

/// Always-on invariant check (simulation correctness is not optional).
#define FGCS_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::fgcs::detail::assert_fail(#expr, std::source_location::current()); \
  } while (false)

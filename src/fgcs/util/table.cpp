#include "fgcs/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "TextTable row arity mismatch: got " + std::to_string(cells.size()) +
              ", expected " + std::to_string(headers_.size()));
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell(double v) { return format_double(v); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_duration_s(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%dh %02dm", static_cast<int>(seconds / 3600),
                  static_cast<int>(std::fmod(seconds, 3600.0) / 60));
  } else if (seconds >= 60.0) {
    std::snprintf(buf, sizeof buf, "%dm %02ds", static_cast<int>(seconds / 60),
                  static_cast<int>(std::fmod(seconds, 60.0)));
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  }
  return buf;
}

}  // namespace fgcs::util

#include "fgcs/util/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool& pool) {
  if (n == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, pool.worker_count());
  if (workers == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Contiguous chunks, a few per worker for load balance.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t submitted = 0;
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    const std::size_t end = std::min(n, begin + chunk_size);
    ++submitted;
    pool.submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
      std::lock_guard lock(done_mutex);
      ++done;
      done_cv.notify_one();
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == submitted; });
}

}  // namespace fgcs::util

#include "fgcs/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "fgcs/util/error.hpp"
#include "fgcs/util/knobs.hpp"

namespace fgcs::util {

ThreadPool::ThreadPool(std::size_t workers) {
  // vmcache-style affinity knob: with FGCS_PIN_THREADS set, worker i is
  // pinned to core (i + 1) % hw — the calling thread keeps core 0 (it
  // participates in every parallel_for), and workers stop migrating
  // between cores mid-sweep. Throughput-only; results are unchanged.
  const bool pin = env_flag("FGCS_PIN_THREADS");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, pin, i] {
      if (pin) pin_thread_to_core(i + 1);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::size_t parse_thread_count(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0' || *value == '-') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  // Cap at something sane; FGCS_THREADS=100000 is a typo, not a request.
  return static_cast<std::size_t>(std::min<unsigned long long>(v, 1024));
}

std::size_t configured_thread_count() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return parse_thread_count(std::getenv("FGCS_THREADS"), hw);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_thread_count());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool& pool) {
  if (n == 0) return;
  const std::size_t workers = pool.worker_count();
  if (workers == 0 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // One shared state object per call (a single allocation); workers and
  // the calling thread pull contiguous chunks off the atomic cursor until
  // the range is drained. The per-worker closures capture one shared_ptr,
  // so submission performs no allocation per chunk (or per task).
  //
  // The caller waits for every *index* to complete, not for every helper
  // task to start: a pool saturated with unrelated long tasks cannot
  // stall parallel_for once the calling thread has drained the range.
  // Late-starting helpers find the cursor exhausted, touch nothing but
  // the shared state, and drop their reference.
  struct State {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex m;
    std::condition_variable cv;

    // Claiming a chunk (begin < n) implies done < n at that instant, so
    // the caller is still inside parallel_for and `body` is alive.
    void drain() {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
        if (done.fetch_add(end - begin, std::memory_order_acq_rel) +
                (end - begin) == n) {
          std::lock_guard lock(m);
          cv.notify_one();
        }
      }
    }
  };
  auto state = std::make_shared<State>();
  state->body = &body;
  state->n = n;
  // A few chunks per participant for load balance.
  state->chunk = std::max<std::size_t>(1, n / ((workers + 1) * 4));

  const std::size_t total_chunks = (n + state->chunk - 1) / state->chunk;
  const std::size_t helpers = std::min(workers, total_chunks);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([state] { state->drain(); });
  }
  state->drain();
  std::unique_lock lock(state->m);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

}  // namespace fgcs::util

#include "fgcs/util/arena.hpp"

#include "fgcs/util/knobs.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace fgcs::util {
namespace {

// Chunks at or above this size are eligible for transparent huge pages
// when FGCS_HUGE_PAGES is set.
constexpr std::size_t kHugeThresholdBytes = std::size_t{2} << 20;

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

}  // namespace

Arena::Arena(std::size_t initial_chunk_bytes)
    : next_chunk_bytes_(initial_chunk_bytes < 64 ? 64 : initial_chunk_bytes) {}

Arena::~Arena() {
  for (auto& c : chunks_) release_chunk(c);
}

Arena::Chunk Arena::new_chunk(std::size_t min_bytes) {
  std::size_t want = next_chunk_bytes_;
  if (want < min_bytes) want = min_bytes;
  Chunk c;
#if defined(__linux__)
  if (want >= kHugeThresholdBytes && env_flag("FGCS_HUGE_PAGES")) {
    const std::size_t mapped = round_up(want, kHugeThresholdBytes);
    void* p = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      ::madvise(p, mapped, MADV_HUGEPAGE);
      c.base = static_cast<std::byte*>(p);
      c.capacity = mapped;
      c.huge = true;
    }
  }
#endif
  if (c.base == nullptr) {
    c.base = static_cast<std::byte*>(
        ::operator new(want, std::align_val_t{alignof(std::max_align_t)}));
    c.capacity = want;
  }
  // Grow geometrically so N bytes of demand costs O(log N) chunks.
  if (next_chunk_bytes_ <= (std::size_t{1} << 30)) next_chunk_bytes_ *= 2;
  return c;
}

void Arena::release_chunk(Chunk& c) {
  if (c.base == nullptr) return;
#if defined(__linux__)
  if (c.huge) {
    ::munmap(c.base, c.capacity);
    c.base = nullptr;
    return;
  }
#endif
  ::operator delete(c.base, std::align_val_t{alignof(std::max_align_t)});
  c.base = nullptr;
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Advance through already-reserved chunks (post-reset reuse) before
  // reserving a new one.
  while (!chunks_.empty() && active_ + 1 < chunks_.size()) {
    ++active_;
    Chunk& c = chunks_[active_];
    const std::size_t off = aligned_offset(c, align);
    if (off + bytes <= c.capacity) {
      c.used = off + bytes;
      return c.base + off;
    }
  }
  chunks_.push_back(new_chunk(bytes + align));
  active_ = chunks_.size() - 1;
  Chunk& c = chunks_[active_];
  const std::size_t off = aligned_offset(c, align);
  c.used = off + bytes;
  return c.base + off;
}

void Arena::reset() {
  for (auto& c : chunks_) c.used = 0;
  active_ = 0;
}

std::size_t Arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.capacity;
  return total;
}

std::size_t Arena::bytes_used() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.used;
  return total;
}

}  // namespace fgcs::util

#include "fgcs/util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void write_field(std::ostream& out, std::string_view field) {
  if (!needs_quoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    write_field(out_, fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::to_field(double v) {
  char buf[64];
  // %.17g round-trips doubles; shorter representations chosen when exact.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string CsvWriter::to_field(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::to_field(std::uint64_t v) { return std::to_string(v); }

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      current += c;
    }
  }
  if (in_quotes) throw IoError("unterminated quote in CSV line");
  fields.push_back(std::move(current));
  return fields;
}

CsvReader::CsvReader(std::istream& in) {
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty() && in.peek() == std::char_traits<char>::eof()) break;
    auto fields = parse_csv_line(line);
    if (first) {
      header_ = std::move(fields);
      first = false;
    } else {
      if (fields.size() != header_.size()) {
        throw IoError("CSV row has " + std::to_string(fields.size()) +
                      " fields, header has " + std::to_string(header_.size()));
      }
      rows_.push_back(std::move(fields));
    }
  }
  if (first) throw IoError("CSV input is empty (no header)");
}

std::size_t CsvReader::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw IoError("CSV column not found: " + std::string(name));
}

}  // namespace fgcs::util

// A small thread pool and a deterministic parallel_for.
//
// fgcs sweeps (experiment grids, per-machine testbed simulation) are
// embarrassingly parallel. parallel_for dispatches index ranges to a pool;
// each index must derive its own RngStream substream from the index, so the
// result is identical for any worker count (including 0 = inline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fgcs::util {

/// Fixed-size worker pool executing queued tasks.
class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means "run submitted work inline".
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t worker_count() const { return threads_.size(); }

  /// A process-wide default pool sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n), distributed over `pool` in contiguous
/// chunks. Blocks until complete. body must be thread-safe across distinct
/// indices and must not throw.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool& pool = ThreadPool::global());

}  // namespace fgcs::util

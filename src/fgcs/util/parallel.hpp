// A small thread pool and a deterministic parallel_for.
//
// fgcs sweeps (experiment grids, per-machine testbed simulation) are
// embarrassingly parallel. parallel_for hands out contiguous index chunks
// from a shared atomic cursor; each index must derive its own RngStream
// substream from the index, so the result is identical for any worker
// count (including 0 = inline).
//
// Worker count of the process-wide pool: the FGCS_THREADS environment
// variable when set (0 means "run everything inline on the calling
// thread"), otherwise the hardware concurrency. With FGCS_PIN_THREADS
// set, pool workers are pinned round-robin to cores 1..hw-1 (the
// caller keeps core 0); see util/knobs.hpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "fgcs/util/inline_function.hpp"

namespace fgcs::util {

/// Fixed-size worker pool executing queued tasks.
class ThreadPool {
 public:
  /// Task currency: small-buffer storage, so submitting a closure that
  /// captures a pointer or two performs no heap allocation.
  using Task = InlineFunction<void(), 48>;

  /// Creates `workers` threads; 0 means "run submitted work inline".
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (std::terminate otherwise).
  void submit(Task task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t worker_count() const { return threads_.size(); }

  /// A process-wide default pool sized by configured_thread_count().
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<Task> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Parses an FGCS_THREADS-style value: a non-negative integer worker
/// count. Malformed or missing values return `fallback`.
std::size_t parse_thread_count(const char* value, std::size_t fallback);

/// Worker count ThreadPool::global() is built with: FGCS_THREADS if set
/// and valid (0 = inline), otherwise the hardware concurrency.
std::size_t configured_thread_count();

/// Runs body(i) for i in [0, n), distributed over `pool` in contiguous
/// chunks pulled from a shared atomic cursor; the calling thread
/// participates, so this makes progress even on a saturated pool. Blocks
/// until complete. body must be thread-safe across distinct indices and
/// must not throw.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ThreadPool& pool = ThreadPool::global());

}  // namespace fgcs::util

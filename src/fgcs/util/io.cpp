#include "fgcs/util/io.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fgcs/util/error.hpp"

namespace fgcs::util {

namespace {

// IEEE CRC-32 lookup table, built once (reflected polynomial 0xEDB88320).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t file_crc32(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw IoError("cannot open for reading: " + path);
  std::uint32_t crc = 0;
  unsigned char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw IoError("read failed: " + path);
    }
    crc = crc32(buf, static_cast<std::size_t>(n), crc);
  }
  ::close(fd);
  return crc;
}

const char* durability_name(Durability level) {
  switch (level) {
    case Durability::kNone:
      return "none";
    case Durability::kCommit:
      return "commit";
    case Durability::kBlock:
      return "block";
  }
  return "?";
}

Durability durability_level() {
  static const Durability level = [] {
    const char* value = std::getenv("FGCS_DURABILITY");
    if (value == nullptr || *value == '\0') return Durability::kCommit;
    if (std::strcmp(value, "0") == 0 || std::strcmp(value, "none") == 0) {
      return Durability::kNone;
    }
    if (std::strcmp(value, "1") == 0 || std::strcmp(value, "commit") == 0) {
      return Durability::kCommit;
    }
    if (std::strcmp(value, "2") == 0 || std::strcmp(value, "block") == 0) {
      return Durability::kBlock;
    }
    std::fprintf(stderr,
                 "fgcs: ignoring malformed FGCS_DURABILITY='%s' (expected "
                 "none|commit|block or 0|1|2); using the default 'commit'\n",
                 value);
    return Durability::kCommit;
  }();
  return level;
}

// ---------------------------------------------------------------------------
// SyncFile

SyncFile::SyncFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) throw IoError("cannot open for writing: " + path);
}

SyncFile::~SyncFile() {
  if (fd_ >= 0) ::close(fd_);
}

void SyncFile::write(const void* data, std::size_t n) {
  fgcs::require(fd_ >= 0, "SyncFile already closed: " + path_);
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t remaining = n;
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd_, p, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw IoError("write failed: " + path_);
    }
    p += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  crc_ = crc32(data, n, crc_);
  bytes_ += n;
}

void SyncFile::sync(Durability only_at) {
  fgcs::require(fd_ >= 0, "SyncFile already closed: " + path_);
  if (durability_level() < only_at) return;
  if (::fsync(fd_) != 0) throw IoError("fsync failed: " + path_);
}

void SyncFile::close() {
  if (fd_ < 0) return;
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) throw IoError("close failed: " + path_);
}

// ---------------------------------------------------------------------------
// Atomic replace

bool fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

void atomic_replace_file(const std::string& path, const void* data,
                         std::size_t n, Durability level) {
  const std::string tmp = path + ".tmp";
  {
    SyncFile out(tmp);
    out.write(data, n);
    if (level >= Durability::kCommit) out.sync(Durability::kNone);
    out.close();
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("rename failed: " + tmp + " -> " + path);
  }
  // Make the rename itself durable; best-effort (some filesystems refuse
  // directory fsync — the rename is still atomic there).
  if (level >= Durability::kCommit) fsync_parent_dir(path);
}

// ---------------------------------------------------------------------------
// Crash injection

namespace {

const char* crashpoint_env(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBlockWrite:
      return "FGCS_CRASH_AFTER_BLOCK_WRITES";
    case CrashPoint::kShardCommit:
      return "FGCS_CRASH_AFTER_SHARD_COMMITS";
    case CrashPoint::kManifestWrite:
      return "FGCS_CRASH_AFTER_MANIFEST_WRITES";
  }
  return nullptr;
}

std::atomic<std::uint64_t> g_crossings[3] = {};

}  // namespace

void crashpoint(CrashPoint point) {
  // Re-read the environment on every crossing: these points fire per
  // block / per shard, so the getenv cost is invisible, and a fork()ed
  // harness child can set the knob after the parent ran clean.
  const char* value = std::getenv(crashpoint_env(point));
  const std::uint64_t crossed =
      g_crossings[static_cast<int>(point)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  if (value == nullptr || *value == '\0') return;
  char* end = nullptr;
  const unsigned long long limit = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || limit == 0) return;
  if (crossed >= limit) {
    // SIGKILL, not abort(): no atexit handlers, no stream flushes — the
    // torn state on disk is exactly what a power cut would leave.
    ::kill(::getpid(), SIGKILL);
  }
}

void reset_crashpoints() {
  for (auto& c : g_crossings) c.store(0, std::memory_order_relaxed);
}

}  // namespace fgcs::util

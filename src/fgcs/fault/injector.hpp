// Deterministic fault injection: FaultPlan -> concrete scheduled events.
//
// A FaultInjector expands a declarative FaultPlan over a (machines,
// horizon) grid into concrete FaultEvents. Expansion draws from its own
// keyed util::RngStream substreams — (seed, spec index, machine) — so it
// is bit-reproducible, independent of thread count, and does not perturb
// any other random stream in the simulation (workload synthesis is
// unchanged by adding a plan).
//
// At simulation time a MachineFaultSession installs the machine's events
// on a sim::Simulation through the ordinary event queue: each occurrence
// becomes a start event (activates the fault, counts fault.injected) and
// an end event (deactivates it). Samplers poll the session's flags:
//
//   MachineFaultSession session(injector, machine_id);
//   session.schedule(simulation);
//   simulation.every(period, [&] {
//     if (session.dropout_active()) { /* no sample: sensor gap */ }
//     sample.service_alive = !session.crash_active() && ...;
//   });
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/sim/time.hpp"

namespace fgcs::sim {
class Simulation;
}  // namespace fgcs::sim

namespace fgcs::fault {

/// One concrete injected fault occurrence.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t machine = 0;
  sim::SimTime start;
  sim::SimDuration duration;
  /// Clock-skew offset while active (kClockSkew only).
  sim::SimDuration skew;
};

/// Expands a plan deterministically; the result is immutable and can be
/// shared across per-machine simulations running in parallel.
class FaultInjector {
 public:
  /// Events are generated for machines [0, machines) over [begin, end);
  /// occurrences starting outside the horizon are dropped and durations
  /// are clipped at `end`.
  FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                std::uint32_t machines, sim::SimTime begin, sim::SimTime end);

  /// All events, sorted by (machine, start).
  std::span<const FaultEvent> events() const { return events_; }

  /// One machine's events, sorted by start.
  std::span<const FaultEvent> events_for(std::uint32_t machine) const;

  std::uint32_t machine_count() const { return machines_; }
  sim::SimTime begin() const { return begin_; }
  sim::SimTime end() const { return end_; }

 private:
  std::uint32_t machines_;
  sim::SimTime begin_;
  sim::SimTime end_;
  std::vector<FaultEvent> events_;          // sorted by (machine, start)
  std::vector<std::size_t> machine_offset_;  // size machines_ + 1
};

/// Live fault state of one machine inside one simulation run. Window
/// faults (crash/dropout/skew) keep activation *counts* so overlapping
/// occurrences nest correctly; guest kills are exposed as a sorted time
/// list for the guest lifecycle to consume.
class MachineFaultSession {
 public:
  MachineFaultSession(const FaultInjector& injector, std::uint32_t machine);

  /// Installs start/end events for every window fault on `simulation`
  /// (guest kills are not scheduled here — see guest_kill_times()). Call
  /// once, before running. Counts fault.injected{kind=...} as events fire.
  void schedule(sim::Simulation& simulation);

  bool crash_active() const { return crash_depth_ > 0; }
  bool dropout_active() const { return dropout_depth_ > 0; }
  /// Sum of active skew offsets (zero when no blip is active).
  sim::SimDuration skew() const { return skew_; }

  /// Scheduled guest-kill instants within the horizon, sorted.
  std::span<const sim::SimTime> guest_kill_times() const { return kills_; }

 private:
  std::span<const FaultEvent> events_;
  std::vector<sim::SimTime> kills_;
  int crash_depth_ = 0;
  int dropout_depth_ = 0;
  sim::SimDuration skew_ = sim::SimDuration::zero();
};

}  // namespace fgcs::fault

// Declarative fault plans for deterministic chaos injection.
//
// The paper's availability states are *organic*: S3/S4 emerge from host
// workload contention and S5 from owner reboots in the load model. A
// FaultPlan adds *injected* adversity on top — machine crashes
// (revocations), transient sensor dropouts, clock-skew blips, and guest
// kills — so recovery machinery (checkpoint/restart, backoff, salvage)
// can be exercised reproducibly. A plan is pure data: it can be written
// to / parsed from a small text format, and expansion into concrete
// events (fault::FaultInjector) is deterministic in (plan, seed), so a
// run replays bit-identically.
//
// Text format, one fault spec per line:
//
//   # fgcs-fault-plan v1
//   crash      rate_per_day=0.05 mean_minutes=30
//   dropout    rate_per_day=0.2  mean_minutes=5  machine=3
//   skew       rate_per_day=0.1  mean_minutes=10 skew_ms=400
//   guest-kill at_hours=12.5,40  machine=0
//
// `machine=*` (default) targets every machine; `rate_per_day` places
// occurrences by a per-machine Poisson process; `at_hours` schedules them
// at exact sim-time offsets instead. Durations are exponential around
// `mean_minutes` (scripted specs may fix them with `duration_minutes`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fgcs/sim/time.hpp"

namespace fgcs::fault {

/// What an injected fault does to the target machine.
enum class FaultKind : std::uint8_t {
  /// Machine revocation: the FGCS service is down for the duration; the
  /// monitor sees service_alive == false (paper state S5).
  kCrash = 0,
  /// Sensor dropout: the sampler produces nothing for the duration; the
  /// detector must hold its last state across the gap.
  kSensorDropout = 1,
  /// Clock-skew blip: sample timestamps drift by `skew` for the duration
  /// (monotonicity is preserved by clamping).
  kClockSkew = 2,
  /// The guest process is killed out from under its controller (the
  /// revocation case uPredict sidesteps by predicting around it).
  kGuestKill = 3,
};

inline constexpr int kFaultKindCount = 4;

/// Short kind name: "crash", "dropout", "skew", "guest-kill".
const char* to_string(FaultKind kind);

/// Parses a kind name; throws ConfigError on anything else.
FaultKind fault_kind_from_string(const std::string& s);

/// Targets every machine (the `machine=*` wildcard).
inline constexpr std::int64_t kAllMachines = -1;

/// One line of a plan: a fault kind plus where/when/how long it strikes.
struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;

  /// Target machine id, or kAllMachines.
  std::int64_t machine = kAllMachines;

  /// Rate-based placement: expected occurrences per machine-day (Poisson).
  /// Ignored when `at_hours` is non-empty.
  double rate_per_day = 0.0;

  /// Scripted placement: exact occurrence starts, hours from the horizon
  /// start. Occurrences outside the horizon are dropped at expansion.
  std::vector<double> at_hours;

  /// Mean duration (exponential) for rate-based occurrences, and the
  /// fixed duration for scripted ones unless `duration_minutes` >= 0.
  double mean_minutes = 5.0;

  /// Fixed duration override for scripted occurrences (< 0: use
  /// mean_minutes as the fixed value).
  double duration_minutes = -1.0;

  /// Clock-skew magnitude, milliseconds (kClockSkew only; may be
  /// negative, the injector keeps timestamps monotone).
  double skew_ms = 250.0;

  bool scripted() const { return !at_hours.empty(); }

  void validate() const;
};

/// An ordered list of fault specs; empty means "no injection" and every
/// consumer must treat that as the exact zero-cost baseline path.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  std::size_t size() const { return specs.size(); }

  void validate() const;

  /// Serializes in the text format above (stable: parse(write(p)) == p
  /// up to floating-point formatting).
  void write(std::ostream& out) const;
  std::string str() const;

  /// Parses the text format; throws ConfigError with a line number on
  /// malformed input.
  static FaultPlan parse(std::istream& in);
  static FaultPlan parse_string(const std::string& text);

  /// File conveniences; throw IoError / ConfigError on failure.
  static FaultPlan load(const std::string& path);
  void save(const std::string& path) const;
};

}  // namespace fgcs::fault

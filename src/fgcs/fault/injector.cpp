#include "fgcs/fault/injector.hpp"

#include <algorithm>

#include "fgcs/obs/observer.hpp"
#include "fgcs/sim/simulation.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::fault {

namespace {

/// RNG key tag for fault expansion substreams ("FALT").
constexpr std::uint64_t kFaultTag = 0x4641'4C54u;

/// Floor for generated durations: a zero-length window would activate and
/// deactivate in the same event and be invisible to every sampler.
constexpr sim::SimDuration kMinDuration = sim::SimDuration::millis(1);

sim::SimDuration spec_fixed_duration(const FaultSpec& spec) {
  const double minutes =
      spec.duration_minutes >= 0.0 ? spec.duration_minutes : spec.mean_minutes;
  return std::max(kMinDuration, sim::SimDuration::from_seconds(minutes * 60.0));
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                             std::uint32_t machines, sim::SimTime begin,
                             sim::SimTime end)
    : machines_(machines), begin_(begin), end_(end) {
  fgcs::require(machines >= 1, "FaultInjector: needs at least one machine");
  fgcs::require(end > begin, "FaultInjector: empty horizon");
  plan.validate();

  const sim::SimDuration horizon = end - begin;
  for (std::size_t s = 0; s < plan.specs.size(); ++s) {
    const FaultSpec& spec = plan.specs[s];
    for (std::uint32_t m = 0; m < machines; ++m) {
      if (spec.machine != kAllMachines &&
          spec.machine != static_cast<std::int64_t>(m)) {
        continue;
      }
      util::RngStream rng(seed, {kFaultTag, s, m});
      auto emit = [&](sim::SimTime start, sim::SimDuration duration) {
        if (start < begin || start >= end) return;
        duration = std::max(duration, kMinDuration);
        if (start + duration > end) duration = end - start;
        FaultEvent ev;
        ev.kind = spec.kind;
        ev.machine = m;
        ev.start = start;
        ev.duration = duration;
        if (spec.kind == FaultKind::kClockSkew) {
          ev.skew = sim::SimDuration::from_seconds(spec.skew_ms / 1000.0);
        }
        events_.push_back(ev);
      };

      if (spec.scripted()) {
        for (const double h : spec.at_hours) {
          emit(begin + sim::SimDuration::from_seconds(h * 3600.0),
               spec_fixed_duration(spec));
        }
      } else {
        const double mean_gap_s = 86400.0 / spec.rate_per_day;
        sim::SimTime t = begin;
        while (true) {
          t += sim::SimDuration::from_seconds(rng.exponential(mean_gap_s));
          if (t >= end) break;
          sim::SimDuration duration;
          if (spec.duration_minutes >= 0.0) {
            duration = spec_fixed_duration(spec);
          } else {
            duration = sim::SimDuration::from_seconds(
                rng.exponential(spec.mean_minutes * 60.0));
          }
          emit(t, duration);
          // Guard against degenerate plans flooding the horizon: a spec
          // can contribute at most one occurrence per second of horizon.
          if (events_.size() > static_cast<std::size_t>(
                                   horizon.as_seconds()) + 1000000u) {
            break;
          }
        }
      }
    }
  }

  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.machine != b.machine) return a.machine < b.machine;
              if (a.start != b.start) return a.start < b.start;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });

  machine_offset_.assign(machines_ + 1, 0);
  for (const auto& ev : events_) ++machine_offset_[ev.machine + 1];
  for (std::uint32_t m = 0; m < machines_; ++m) {
    machine_offset_[m + 1] += machine_offset_[m];
  }
}

std::span<const FaultEvent> FaultInjector::events_for(
    std::uint32_t machine) const {
  fgcs::require(machine < machines_, "FaultInjector: machine id out of range");
  return std::span<const FaultEvent>(events_).subspan(
      machine_offset_[machine],
      machine_offset_[machine + 1] - machine_offset_[machine]);
}

MachineFaultSession::MachineFaultSession(const FaultInjector& injector,
                                         std::uint32_t machine)
    : events_(injector.events_for(machine)) {
  for (const auto& ev : events_) {
    if (ev.kind == FaultKind::kGuestKill) kills_.push_back(ev.start);
  }
}

void MachineFaultSession::schedule(sim::Simulation& simulation) {
  for (const auto& ev : events_) {
    if (ev.kind == FaultKind::kGuestKill) continue;
    const FaultEvent* event = &ev;
    simulation.at(ev.start, [this, event] {
      switch (event->kind) {
        case FaultKind::kCrash:
          ++crash_depth_;
          break;
        case FaultKind::kSensorDropout:
          ++dropout_depth_;
          break;
        case FaultKind::kClockSkew:
          skew_ += event->skew;
          break;
        case FaultKind::kGuestKill:
          break;
      }
      if (auto* o = obs::observer()) {
        o->on_fault_injected(static_cast<int>(event->kind), event->start,
                             event->duration);
      }
    });
    simulation.at(ev.start + ev.duration, [this, event] {
      switch (event->kind) {
        case FaultKind::kCrash:
          --crash_depth_;
          break;
        case FaultKind::kSensorDropout:
          --dropout_depth_;
          break;
        case FaultKind::kClockSkew:
          skew_ -= event->skew;
          break;
        case FaultKind::kGuestKill:
          break;
      }
    });
  }
}

}  // namespace fgcs::fault

#include "fgcs/fault/fault_plan.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fgcs/util/error.hpp"

namespace fgcs::fault {

namespace {

constexpr char kPlanMagic[] = "# fgcs-fault-plan v1";

double parse_double(const std::string& s, int line) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  fgcs::require(pos == s.size() && std::isfinite(v),
                "fault plan line " + std::to_string(line) +
                    ": bad number '" + s + "'");
  return v;
}

std::string format_double(double v) {
  std::ostringstream out;
  out << v;  // shortest round-trippable-enough form for plan constants
  return out.str();
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSensorDropout:
      return "dropout";
    case FaultKind::kClockSkew:
      return "skew";
    case FaultKind::kGuestKill:
      return "guest-kill";
  }
  return "?";
}

FaultKind fault_kind_from_string(const std::string& s) {
  if (s == "crash") return FaultKind::kCrash;
  if (s == "dropout") return FaultKind::kSensorDropout;
  if (s == "skew") return FaultKind::kClockSkew;
  if (s == "guest-kill") return FaultKind::kGuestKill;
  throw ConfigError("unknown fault kind: " + s);
}

void FaultSpec::validate() const {
  fgcs::require(machine >= kAllMachines, "fault spec: bad machine id");
  fgcs::require(rate_per_day >= 0.0 && std::isfinite(rate_per_day),
                "fault spec: rate_per_day must be >= 0");
  fgcs::require(scripted() || rate_per_day > 0.0,
                "fault spec: needs rate_per_day > 0 or at_hours");
  for (const double h : at_hours) {
    fgcs::require(h >= 0.0 && std::isfinite(h),
                  "fault spec: at_hours entries must be >= 0");
  }
  fgcs::require(mean_minutes > 0.0 && std::isfinite(mean_minutes),
                "fault spec: mean_minutes must be > 0");
  fgcs::require(std::isfinite(skew_ms), "fault spec: skew_ms must be finite");
}

void FaultPlan::validate() const {
  for (const auto& spec : specs) spec.validate();
}

void FaultPlan::write(std::ostream& out) const {
  out << kPlanMagic << '\n';
  for (const auto& spec : specs) {
    out << to_string(spec.kind);
    if (spec.scripted()) {
      out << " at_hours=";
      for (std::size_t i = 0; i < spec.at_hours.size(); ++i) {
        if (i > 0) out << ',';
        out << format_double(spec.at_hours[i]);
      }
    } else {
      out << " rate_per_day=" << format_double(spec.rate_per_day);
    }
    out << " mean_minutes=" << format_double(spec.mean_minutes);
    if (spec.duration_minutes >= 0.0) {
      out << " duration_minutes=" << format_double(spec.duration_minutes);
    }
    if (spec.kind == FaultKind::kClockSkew) {
      out << " skew_ms=" << format_double(spec.skew_ms);
    }
    if (spec.machine != kAllMachines) {
      out << " machine=" << spec.machine;
    }
    out << '\n';
  }
}

std::string FaultPlan::str() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  int line_no = 0;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing CR (plans may come from Windows editors).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_no == 1 && line == kPlanMagic) {
      saw_magic = true;
      continue;
    }
    // Skip blank lines and comments.
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream tokens(line);
    std::string kind_token;
    tokens >> kind_token;
    FaultSpec spec;
    try {
      spec.kind = fault_kind_from_string(kind_token);
    } catch (const ConfigError&) {
      throw ConfigError("fault plan line " + std::to_string(line_no) + ": " +
                        "unknown fault kind '" + kind_token + "'");
    }
    std::string token;
    while (tokens >> token) {
      const auto eq = token.find('=');
      fgcs::require(eq != std::string::npos,
                    "fault plan line " + std::to_string(line_no) +
                        ": expected key=value, got '" + token + "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "rate_per_day") {
        spec.rate_per_day = parse_double(value, line_no);
      } else if (key == "at_hours") {
        std::istringstream list(value);
        std::string item;
        while (std::getline(list, item, ',')) {
          spec.at_hours.push_back(parse_double(item, line_no));
        }
      } else if (key == "mean_minutes") {
        spec.mean_minutes = parse_double(value, line_no);
      } else if (key == "duration_minutes") {
        spec.duration_minutes = parse_double(value, line_no);
      } else if (key == "skew_ms") {
        spec.skew_ms = parse_double(value, line_no);
      } else if (key == "machine") {
        if (value == "*") {
          spec.machine = kAllMachines;
        } else {
          spec.machine =
              static_cast<std::int64_t>(parse_double(value, line_no));
          fgcs::require(spec.machine >= 0,
                        "fault plan line " + std::to_string(line_no) +
                            ": machine must be >= 0 or *");
        }
      } else {
        throw ConfigError("fault plan line " + std::to_string(line_no) +
                          ": unknown key '" + key + "'");
      }
    }
    try {
      spec.validate();
    } catch (const ConfigError& e) {
      throw ConfigError("fault plan line " + std::to_string(line_no) + ": " +
                        e.what());
    }
    plan.specs.push_back(std::move(spec));
  }
  fgcs::require(saw_magic,
                "fault plan: missing '# fgcs-fault-plan v1' magic on line 1");
  return plan;
}

FaultPlan FaultPlan::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open fault plan: " + path);
  try {
    return parse(in);
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

void FaultPlan::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write fault plan: " + path);
  write(out);
  if (!out) throw IoError("failed writing fault plan: " + path);
}

}  // namespace fgcs::fault

// Online availability queries: the predictor half of the serving layer.
//
// A QueryEngine answers "P(machine m stays available for the next W
// hours, asked at sim time t)" against the feed's latest published
// snapshot. Reads are wait-free: pinning a snapshot is one atomic
// acquire load, after which every evaluation touches only immutable
// state — safe to run from any number of threads concurrently with
// ingestion, and two evaluations against the same pinned snapshot are
// bit-identical no matter what the ingest side does in between.
//
// Query contract: predictions are bit-identical to the batch
// SemiMarkovPredictor run on the ingested prefix for queries strictly
// after the machine's watermark (see AvailabilityFeed::watermark).
// Queries inside the machine's last known episode report 0 availability,
// like the batch predictor's down-right-now check.
#pragma once

#include <memory>
#include <vector>

#include "fgcs/serve/feed.hpp"

namespace fgcs::serve {

struct ServeQuery {
  trace::MachineId machine = 0;
  /// When the question is asked, in sim time.
  sim::SimTime at;
  /// How long the machine must stay available.
  sim::SimDuration window;
};

struct QueryAnswer {
  /// P(no unavailability occurrence overlaps [at, at + window)).
  double p_available = 0.0;
  /// Expected unavailability occurrences starting within the window.
  double expected_occurrences = 0.0;
};

/// Pure evaluation of one query against one machine's incremental state —
/// the shared core under both the point and the batched entry points.
QueryAnswer evaluate(const MachineState& state, const FeedConfig& config,
                     sim::SimTime at, sim::SimDuration window);

class QueryEngine {
 public:
  explicit QueryEngine(const AvailabilityFeed& feed) : feed_(&feed) {}

  /// Pins the feed's latest snapshot (one acquire load). Hold the result
  /// to answer a batch of queries against one consistent fleet view.
  std::shared_ptr<const FleetSnapshot> pin() const {
    return feed_->snapshot();
  }

  /// Point query against the latest snapshot; bumps serve.queries.
  QueryAnswer query(const ServeQuery& q) const;

  /// Point query against a pinned snapshot. Pure: no observer traffic,
  /// so million-query load loops account their count in one batched bump
  /// (see run_load) instead of per call.
  QueryAnswer query(const FleetSnapshot& snap, const ServeQuery& q) const;

  /// Batched fleet query: p_available for every machine at one (at,
  /// window), against a pinned snapshot; one serve.queries bump of
  /// machine_count.
  std::vector<double> p_available_fleet(const FleetSnapshot& snap,
                                        sim::SimTime at,
                                        sim::SimDuration window) const;

 private:
  const AvailabilityFeed* feed_;
};

}  // namespace fgcs::serve

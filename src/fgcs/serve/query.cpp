#include "fgcs/serve/query.hpp"

#include "fgcs/util/error.hpp"

namespace fgcs::serve {

QueryAnswer evaluate(const MachineState& state, const FeedConfig& config,
                     sim::SimTime at, sim::SimDuration window) {
  const trace::TraceCalendar calendar(config.start_dow);
  const ClassHistory& history = state.gaps[calendar.is_weekend(at) ? 1 : 0];

  QueryAnswer answer;
  answer.expected_occurrences = predict::renewal_occurrences(
      history.sum_h, history.sorted_h.size(), window.as_hours());

  // Down right now? Mirrors the batch predictor's `inside` check; the
  // open-episode case covers a live feed where the close event has not
  // arrived yet (batch never sees open episodes — prefixes hold only
  // closed records).
  const bool inside_last = state.episodes > 0 && state.last_start <= at &&
                           at < state.last_end;
  const bool inside_open = state.open && at >= state.open_start;
  if (inside_last || inside_open) {
    answer.p_available = 0.0;
    return answer;
  }

  const sim::SimTime age_base =
      state.episodes > 0 ? state.last_end : config.horizon_start;
  // A query before the age base (pre-history, post-horizon-start) would
  // produce a negative age; the batch predictor cannot be asked this
  // (last_end_before returns an earlier episode instead), and the
  // watermark contract keeps well-formed callers past it. Clamp to 0 so
  // hostile inputs (fuzzing) stay in-range rather than UB.
  const double age_h = at >= age_base ? (at - age_base).as_hours() : 0.0;
  answer.p_available = predict::conditional_availability(
      history.sorted_h, age_h, window.as_hours(), config.model);
  return answer;
}

QueryAnswer QueryEngine::query(const ServeQuery& q) const {
  const auto snap = pin();
  const QueryAnswer answer = query(*snap, q);
  if (obs::Observer* obs = obs::observer()) obs->on_serve_queries(q.at, 1);
  return answer;
}

QueryAnswer QueryEngine::query(const FleetSnapshot& snap,
                               const ServeQuery& q) const {
  fgcs::require(q.machine < snap.machines.size(),
                "serve query: machine id out of range");
  fgcs::require(q.window > sim::SimDuration::zero(),
                "serve query: window must be positive");
  return evaluate(*snap.machines[q.machine], snap.config, q.at, q.window);
}

std::vector<double> QueryEngine::p_available_fleet(
    const FleetSnapshot& snap, sim::SimTime at,
    sim::SimDuration window) const {
  fgcs::require(window > sim::SimDuration::zero(),
                "serve query: window must be positive");
  std::vector<double> out;
  out.reserve(snap.machines.size());
  for (const auto& state : snap.machines) {
    out.push_back(evaluate(*state, snap.config, at, window).p_available);
  }
  if (obs::Observer* obs = obs::observer()) {
    obs->on_serve_queries(at, out.size());
  }
  return out;
}

}  // namespace fgcs::serve

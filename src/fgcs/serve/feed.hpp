// Online availability ingestion: the profiler half of the serving layer.
//
// AvailabilityFeed subscribes to the simulation through the Observer's
// event seam (obs::EventSink) and folds every unavailability episode into
// incremental per-machine semi-Markov state the moment it closes — the
// trace is never rescanned. The state a feed maintains is, by
// construction, exactly what the batch SemiMarkovPredictor would derive
// from the trace prefix ingested so far: per-day-class sorted gap-length
// vectors (evaluated through the shared stats::ecdf_at), episode-time-
// order running sums, and the last episode's span. The serve-incremental
// diff oracle holds the two bit-identical over hundreds of seeds.
//
// Consistency model: ingestion runs under one mutex; readers never take
// it. publish() builds an immutable FleetSnapshot and swaps it into an
// atomic shared_ptr (epoch swap); QueryEngine pins a snapshot with one
// acquire load and reads freely. Machine states are copy-on-write — a
// publish shares them with the build side, and the next ingest touching
// a shared machine clones it first — so a publish costs O(machines)
// pointer copies, not a deep copy, and steady-state ingest allocates
// nothing beyond amortized vector growth.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fgcs/obs/observer.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/records.hpp"

namespace fgcs::serve {

/// Upper bounds (minutes) of the incremental episode-duration histogram;
/// one overflow bucket follows.
inline constexpr double kDurationMinuteBounds[] = {1, 5, 15, 60, 240, 1440};
inline constexpr std::size_t kDurationBuckets =
    sizeof(kDurationMinuteBounds) / sizeof(kDurationMinuteBounds[0]) + 1;

/// Gap-length history of one day class (weekday or weekend).
struct ClassHistory {
  /// Availability-gap lengths in hours, ascending — the incremental twin
  /// of the batch predictor's Ecdf sample vector.
  std::vector<double> sorted_h;
  /// Sum of the same lengths accumulated in episode-time order; renewal
  /// estimates need this exact summation order for bit-identity with a
  /// batch recomputation.
  double sum_h = 0.0;

  void add(double length_h);
};

/// Everything the feed knows about one machine. Value-semantic so the
/// copy-on-write snapshot scheme can clone it wholesale.
struct MachineState {
  /// [0] weekday-start gaps, [1] weekend-start gaps — the batch
  /// predictor's day-class split (Figure 6).
  ClassHistory gaps[2];
  std::uint64_t episodes = 0;
  /// Span of the most recently ingested (closed) episode.
  sim::SimTime last_start;
  sim::SimTime last_end;
  /// An episode-open event arrived without its close yet: the machine is
  /// known-down from open_start onward.
  bool open = false;
  sim::SimTime open_start;
  /// Closed episodes by cause (index = S-state - 1).
  std::uint64_t cause_episodes[obs::kStateCount] = {};
  /// Closed-episode duration histogram over kDurationMinuteBounds.
  std::uint64_t duration_buckets[kDurationBuckets] = {};
  /// Total unavailable hours ingested.
  double down_sum_h = 0.0;
};

struct FeedConfig {
  /// Fleet size; ingesting a record for a machine >= this throws.
  std::uint32_t machines = 0;
  /// Trace horizon start: the age base for machines with no history yet
  /// (mirrors TraceIndex::last_end_before's fallback).
  sim::SimTime horizon_start;
  /// Day-of-week of the horizon's first day, for day-class splits.
  trace::DayOfWeek start_dow = trace::DayOfWeek::kMonday;
  /// Estimator knobs, shared with the batch predictor.
  predict::SemiMarkovConfig model;
  /// Auto-publish a snapshot every N ingested records; 0 = only on
  /// explicit publish().
  std::uint64_t publish_every = 1024;
};

/// An immutable point-in-time view of the whole fleet's predictor state.
struct FleetSnapshot {
  /// Monotone publish counter; 0 is the empty pre-ingest snapshot.
  std::uint64_t version = 0;
  /// Records ingested when this snapshot was published.
  std::uint64_t events = 0;
  FeedConfig config;
  std::vector<std::shared_ptr<const MachineState>> machines;
};

class AvailabilityFeed : public obs::EventSink {
 public:
  explicit AvailabilityFeed(FeedConfig config);

  AvailabilityFeed(const AvailabilityFeed&) = delete;
  AvailabilityFeed& operator=(const AvailabilityFeed&) = delete;

  const FeedConfig& config() const { return config_; }

  /// Folds one closed unavailability episode into the machine's state.
  /// Records must arrive in start order per machine (throws ConfigError
  /// on a sim-time regression — ingest time is monotone by contract).
  void ingest(const trace::UnavailabilityRecord& record);

  /// Marks an episode as opened-but-unclosed; queries at or past `at`
  /// report the machine down until the matching close is ingested.
  void open_episode(trace::MachineId machine, sim::SimTime at);

  /// obs::EventSink: translates the observer's episode open/close events
  /// into open_episode()/ingest() calls. Close events carry (end, cause,
  /// duration), so the record is reconstructed as [at - dur, at).
  void on_flight_event(const obs::FlightEvent& event) override;

  /// Publishes the current build state as a fresh immutable snapshot.
  void publish();

  /// The most recently published snapshot (never null; version 0 before
  /// the first publish). Wait-free for readers.
  std::shared_ptr<const FleetSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Sim time up to which machine `m`'s history is complete: the start of
  /// its last ingested or opened episode (horizon start when none).
  /// Queries strictly after the watermark see predictions bit-identical
  /// to the batch predictor run on the ingested prefix.
  sim::SimTime watermark(trace::MachineId machine) const;

  std::uint64_t events_ingested() const;
  std::uint64_t snapshots_published() const;

 private:
  /// The build-side state of `machine`, cloned first if a published
  /// snapshot still shares it (copy-on-write). Callers hold mutex_.
  MachineState& writable(trace::MachineId machine);
  void publish_locked();

  FeedConfig config_;
  trace::TraceCalendar calendar_;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<MachineState>> build_;
  std::uint64_t events_ = 0;
  std::uint64_t since_publish_ = 0;
  std::uint64_t version_ = 0;

  std::atomic<std::shared_ptr<const FleetSnapshot>> snapshot_;
};

}  // namespace fgcs::serve

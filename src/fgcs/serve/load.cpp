#include "fgcs/serve/load.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::serve {

namespace {

constexpr std::string_view kHeader = "# fgcs-serve-load v1";

[[noreturn]] void mix_fail(std::string_view field, std::string_view why) {
  throw ConfigError("serve mix field " + std::string(field) + ": " +
                    std::string(why));
}

double parse_mix_double(std::string_view field, std::string_view text) {
  if (text.empty()) mix_fail(field, "empty value");
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    mix_fail(field, "not a number: '" + std::string(text) + "'");
  }
  if (!std::isfinite(value)) mix_fail(field, "must be finite");
  return value;
}

std::string format_double(double v) {
  // Shortest exact round-trip, so str() -> parse() is lossless.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  return std::string(buf, ptr);
}

[[noreturn]] void line_fail(std::size_t line, std::string_view why) {
  throw ConfigError("serve load line " + std::to_string(line) + ": " +
                    std::string(why));
}

template <typename T>
T parse_uint(std::size_t line, std::string_view key, std::string_view text) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    line_fail(line, std::string(key) + " is not an unsigned integer: '" +
                        std::string(text) + "'");
  }
  return value;
}

double parse_double(std::size_t line, std::string_view key,
                    std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    line_fail(line, std::string(key) + " is not a number: '" +
                        std::string(text) + "'");
  }
  return value;
}

}  // namespace

MixSpec MixSpec::parse(std::string_view text) {
  MixSpec mix;
  if (text == "uniform") {
    mix.kind = Kind::kUniform;
    return mix;
  }
  if (text.rfind("zipf:", 0) == 0) {
    mix.kind = Kind::kZipf;
    mix.zipf_skew = parse_mix_double("zipf-skew", text.substr(5));
    if (mix.zipf_skew <= 0.0 || mix.zipf_skew > 32.0) {
      mix_fail("zipf-skew", "must be in (0, 32]");
    }
    return mix;
  }
  if (text.rfind("sweep:", 0) == 0) {
    mix.kind = Kind::kSweep;
    const std::string_view range = text.substr(6);
    // The separator is the first '-' past position 0, so a leading minus
    // sign is diagnosed as a bad number, not silently split.
    const std::size_t dash = range.find('-', 1);
    if (range.empty() || dash == std::string_view::npos) {
      mix_fail("sweep-range", "expected sweep:<lo>-<hi>, got '" +
                                  std::string(text) + "'");
    }
    mix.sweep_lo_hours = parse_mix_double("sweep-lo", range.substr(0, dash));
    mix.sweep_hi_hours = parse_mix_double("sweep-hi", range.substr(dash + 1));
    if (mix.sweep_lo_hours <= 0.0) mix_fail("sweep-lo", "must be positive");
    if (mix.sweep_hi_hours < mix.sweep_lo_hours) {
      mix_fail("sweep-hi", "must be >= sweep-lo");
    }
    if (mix.sweep_hi_hours > 1e6) mix_fail("sweep-hi", "must be <= 1e6");
    return mix;
  }
  mix_fail("kind", "unknown mix '" + std::string(text) +
                       "' (expected uniform, zipf:<skew> or "
                       "sweep:<lo>-<hi>)");
}

std::string MixSpec::str() const {
  switch (kind) {
    case Kind::kUniform:
      return "uniform";
    case Kind::kZipf:
      return "zipf:" + format_double(zipf_skew);
    case Kind::kSweep:
      return "sweep:" + format_double(sweep_lo_hours) + "-" +
             format_double(sweep_hi_hours);
  }
  return "uniform";  // unreachable
}

LoadSpec LoadSpec::parse(std::string_view text) {
  LoadSpec spec;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kHeader) {
        line_fail(1, "expected header '" + std::string(kHeader) + "'");
      }
      saw_header = true;
      continue;
    }
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      line_fail(line_no, "expected key=value, got '" + std::string(line) +
                             "'");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "machines") {
      spec.machines = parse_uint<std::uint32_t>(line_no, key, value);
    } else if (key == "queries") {
      spec.queries = parse_uint<std::uint64_t>(line_no, key, value);
    } else if (key == "mix") {
      try {
        spec.mix = MixSpec::parse(value);
      } catch (const ConfigError& e) {
        line_fail(line_no, e.what());
      }
    } else if (key == "at_hours") {
      spec.at_hours = parse_double(line_no, key, value);
    } else if (key == "horizon_hours") {
      spec.horizon_hours = parse_double(line_no, key, value);
    } else if (key == "seed") {
      spec.seed = parse_uint<std::uint64_t>(line_no, key, value);
    } else {
      line_fail(line_no, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!saw_header) line_fail(1, "empty input");
  spec.validate();
  return spec;
}

std::string LoadSpec::str() const {
  std::string out(kHeader);
  out += "\nmachines=" + std::to_string(machines);
  out += "\nqueries=" + std::to_string(queries);
  out += "\nmix=" + mix.str();
  out += "\nat_hours=" + format_double(at_hours);
  out += "\nhorizon_hours=" + format_double(horizon_hours);
  out += "\nseed=" + std::to_string(seed);
  out += "\n";
  return out;
}

void LoadSpec::validate() const {
  fgcs::require(machines >= 1 && machines <= 1'000'000,
                "serve load: machines must be in [1, 1000000]");
  fgcs::require(queries >= 1 && queries <= 10'000'000'000ULL,
                "serve load: queries must be in [1, 1e10]");
  fgcs::require(std::isfinite(at_hours) && at_hours >= 0.0 &&
                    at_hours <= 1e7,
                "serve load: at_hours must be in [0, 1e7]");
  fgcs::require(std::isfinite(horizon_hours) && horizon_hours > 0.0 &&
                    horizon_hours <= 1e6,
                "serve load: horizon_hours must be in (0, 1e6]");
  switch (mix.kind) {
    case MixSpec::Kind::kUniform:
      break;
    case MixSpec::Kind::kZipf:
      fgcs::require(std::isfinite(mix.zipf_skew) && mix.zipf_skew > 0.0 &&
                        mix.zipf_skew <= 32.0,
                    "serve load: zipf skew must be in (0, 32]");
      break;
    case MixSpec::Kind::kSweep:
      fgcs::require(std::isfinite(mix.sweep_lo_hours) &&
                        std::isfinite(mix.sweep_hi_hours) &&
                        mix.sweep_lo_hours > 0.0 &&
                        mix.sweep_hi_hours >= mix.sweep_lo_hours &&
                        mix.sweep_hi_hours <= 1e6,
                    "serve load: sweep range must satisfy 0 < lo <= hi <= "
                    "1e6");
      break;
  }
}

LoadGenerator::LoadGenerator(LoadSpec spec) : spec_(spec) {
  spec_.validate();
  if (spec_.mix.kind == MixSpec::Kind::kZipf) {
    zipf_cdf_.reserve(spec_.machines);
    double total = 0.0;
    for (std::uint32_t k = 0; k < spec_.machines; ++k) {
      total += std::pow(static_cast<double>(k + 1), -spec_.mix.zipf_skew);
      zipf_cdf_.push_back(total);
    }
    for (double& v : zipf_cdf_) v /= total;
    zipf_cdf_.back() = 1.0;  // guard against rounding shortfall
  }
}

ServeQuery LoadGenerator::query(std::uint64_t i) const {
  util::RngStream rng(spec_.seed, {kServeTag, i});
  ServeQuery q;
  // Fixed draw order (machine, window, jitter) keeps the sequence stable
  // across mix kinds that skip a draw.
  if (spec_.mix.kind == MixSpec::Kind::kZipf) {
    const double u = rng.uniform();
    const auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    q.machine = static_cast<trace::MachineId>(
        std::min<std::size_t>(it - zipf_cdf_.begin(), spec_.machines - 1));
  } else {
    q.machine = static_cast<trace::MachineId>(
        rng.uniform_index(spec_.machines));
  }
  double window_h = spec_.horizon_hours;
  if (spec_.mix.kind == MixSpec::Kind::kSweep) {
    window_h = rng.uniform(spec_.mix.sweep_lo_hours, spec_.mix.sweep_hi_hours);
  }
  q.window = sim::SimDuration::from_seconds(window_h * 3600.0);
  q.at = sim::SimTime::from_seconds(spec_.at_hours * 3600.0 +
                                    rng.uniform(0.0, 3600.0));
  return q;
}

LoadStats run_load(const QueryEngine& engine, const LoadGenerator& gen,
                   std::uint64_t begin, std::uint64_t end) {
  fgcs::require(begin <= end && end <= gen.spec().queries,
                "serve load: query range out of bounds");
  const auto snap = engine.pin();
  LoadStats stats;
  for (std::uint64_t i = begin; i < end; ++i) {
    const ServeQuery q = gen.query(i);
    const QueryAnswer a = engine.query(*snap, q);
    ++stats.queries;
    stats.prob_sum += a.p_available;
    stats.occ_sum += a.expected_occurrences;
  }
  // One batched serve.queries bump for the whole range, stamped at the
  // load's nominal arrival time — per-call bumps would dominate the very
  // loop this function exists to measure.
  if (stats.queries > 0) {
    if (obs::Observer* obs = obs::observer()) {
      obs->on_serve_queries(
          sim::SimTime::from_seconds(gen.spec().at_hours * 3600.0),
          stats.queries);
    }
  }
  return stats;
}

}  // namespace fgcs::serve

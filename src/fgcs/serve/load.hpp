// Deterministic query load generation for the serving layer.
//
// A LoadGenerator materializes query i of a spec on demand from a keyed
// substream RngStream(seed, {kServeTag, i}) — random access, no stored
// query list, identical sequences regardless of chunking or thread
// count. Three arrival mixes:
//
//   uniform          every machine equally likely, fixed window
//   zipf:<skew>      hot-machine skew: machine k drawn with probability
//                    proportional to 1/(k+1)^skew, fixed window
//   sweep:<lo>-<hi>  uniform machines, window swept uniformly over
//                    [lo, hi] hours
//
// Specs parse from a line-oriented text format ("# fgcs-serve-load v1"
// header + key=value lines) with line-numbered diagnostics, and mix
// strings from their compact form with field-named diagnostics — the
// structure the serve-query fuzz target leans on. str() renders are
// exact round-trips (%.17g), so parse(str(x)) is a fixpoint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fgcs/serve/query.hpp"

namespace fgcs::serve {

/// Substream tag ("SERV") separating load-generator draws from every
/// other keyed stream in the repo.
inline constexpr std::uint64_t kServeTag = 0x5345'5256;

struct MixSpec {
  enum class Kind { kUniform, kZipf, kSweep };
  Kind kind = Kind::kUniform;
  double zipf_skew = 1.1;
  double sweep_lo_hours = 1.0;
  double sweep_hi_hours = 24.0;

  /// Parses "uniform", "zipf:<skew>" or "sweep:<lo>-<hi>". Throws
  /// ConfigError naming the offending field.
  static MixSpec parse(std::string_view text);

  /// Canonical compact form; parse(str()) reproduces *this exactly.
  std::string str() const;
};

struct LoadSpec {
  std::uint32_t machines = 2000;
  std::uint64_t queries = 1'000'000;
  MixSpec mix;
  /// Nominal query arrival time (hours since horizon start); each query
  /// jitters uniformly within the following hour.
  double at_hours = 672.0;
  /// Fixed query window for the uniform and zipf mixes, hours.
  double horizon_hours = 4.0;
  std::uint64_t seed = 20060806;

  /// Parses the "# fgcs-serve-load v1" text format. Throws ConfigError
  /// with a 1-based line number on malformed input.
  static LoadSpec parse(std::string_view text);

  /// Canonical text form; parse(str()) reproduces *this exactly.
  std::string str() const;

  /// Bounds checks (also run by parse): machine/query counts in range,
  /// hours finite and positive, mix parameters sane.
  void validate() const;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadSpec spec);

  const LoadSpec& spec() const { return spec_; }

  /// Query i of the load, computed independently of every other query.
  ServeQuery query(std::uint64_t i) const;

 private:
  LoadSpec spec_;
  /// Normalized cumulative Zipf weights over machine rank (empty for
  /// non-Zipf mixes); machine draw is one binary search.
  std::vector<double> zipf_cdf_;
};

/// Aggregate of one load run: checksums let benches assert the work was
/// real (and deterministic) without storing per-query results.
struct LoadStats {
  std::uint64_t queries = 0;
  double prob_sum = 0.0;
  double occ_sum = 0.0;
};

/// Runs queries [begin, end) of `gen` against one pinned snapshot of
/// `engine`'s feed; accounts the whole range with a single batched
/// serve.queries bump.
LoadStats run_load(const QueryEngine& engine, const LoadGenerator& gen,
                   std::uint64_t begin, std::uint64_t end);

}  // namespace fgcs::serve

#include "fgcs/serve/feed.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"

namespace fgcs::serve {

void ClassHistory::add(double length_h) {
  const auto it = std::upper_bound(sorted_h.begin(), sorted_h.end(), length_h);
  sorted_h.insert(it, length_h);
  sum_h += length_h;
}

AvailabilityFeed::AvailabilityFeed(FeedConfig config)
    : config_(config), calendar_(config.start_dow) {
  fgcs::require(config_.machines > 0, "serve feed needs at least one machine");
  build_.reserve(config_.machines);
  auto initial = std::make_shared<FleetSnapshot>();
  initial->config = config_;
  initial->machines.reserve(config_.machines);
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    auto state = std::make_shared<MachineState>();
    state->last_start = config_.horizon_start;
    state->last_end = config_.horizon_start;
    initial->machines.push_back(state);
    build_.push_back(std::move(state));
  }
  snapshot_.store(std::move(initial), std::memory_order_release);
}

MachineState& AvailabilityFeed::writable(trace::MachineId machine) {
  std::shared_ptr<MachineState>& slot = build_[machine];
  // use_count > 1 means a published snapshot still references this state;
  // clone before mutating so pinned readers keep a stable view.
  if (slot.use_count() > 1) slot = std::make_shared<MachineState>(*slot);
  return *slot;
}

void AvailabilityFeed::ingest(const trace::UnavailabilityRecord& record) {
  fgcs::require(record.machine < config_.machines,
                "serve ingest: machine id out of range");
  fgcs::require(record.end >= record.start,
                "serve ingest: episode ends before it starts");
  std::lock_guard<std::mutex> lock(mutex_);
  MachineState& s = writable(record.machine);
  fgcs::require(s.episodes == 0 || record.start >= s.last_start,
                "serve ingest: sim time moved backwards on this machine");
  // The availability gap closed by this episode: from the previous
  // episode's end to this one's start, classified by the day class of the
  // gap's start — exactly SemiMarkovPredictor::interval_samples, one gap
  // at a time. Non-positive gaps (back-to-back or overlapping episodes)
  // contribute no sample there either.
  if (s.episodes > 0 && record.start > s.last_end) {
    const sim::SimTime gap_start = s.last_end;
    const double length_h = (record.start - gap_start).as_hours();
    s.gaps[calendar_.is_weekend(gap_start) ? 1 : 0].add(length_h);
  }
  s.last_start = record.start;
  s.last_end = record.end;
  s.open = false;
  ++s.episodes;
  const int cause = static_cast<int>(record.cause);
  if (cause >= 1 && cause <= obs::kStateCount) {
    ++s.cause_episodes[cause - 1];
  }
  const double minutes = record.duration().as_minutes();
  const auto* bounds_end = kDurationMinuteBounds + kDurationBuckets - 1;
  const auto* it =
      std::lower_bound(kDurationMinuteBounds, bounds_end, minutes);
  ++s.duration_buckets[it - kDurationMinuteBounds];
  s.down_sum_h += record.duration().as_hours();

  ++events_;
  ++since_publish_;
  if (obs::Observer* obs = obs::observer()) obs->on_serve_ingest(record.end);
  if (config_.publish_every != 0 && since_publish_ >= config_.publish_every) {
    publish_locked();
  }
}

void AvailabilityFeed::open_episode(trace::MachineId machine,
                                    sim::SimTime at) {
  fgcs::require(machine < config_.machines,
                "serve ingest: machine id out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  MachineState& s = writable(machine);
  fgcs::require(s.episodes == 0 || at >= s.last_start,
                "serve ingest: sim time moved backwards on this machine");
  s.open = true;
  s.open_start = at;
}

void AvailabilityFeed::on_flight_event(const obs::FlightEvent& event) {
  switch (event.kind) {
    case obs::FlightEventKind::kEpisodeOpened:
      open_episode(event.machine, event.at);
      break;
    case obs::FlightEventKind::kEpisodeClosed: {
      trace::UnavailabilityRecord record;
      record.machine = event.machine;
      record.start = event.at - event.dur;
      record.end = event.at;
      record.cause = static_cast<monitor::AvailabilityState>(event.a);
      ingest(record);
      break;
    }
    default:
      break;  // other event kinds carry nothing the predictor needs
  }
}

void AvailabilityFeed::publish_locked() {
  auto next = std::make_shared<FleetSnapshot>();
  next->version = ++version_;
  next->events = events_;
  next->config = config_;
  next->machines.assign(build_.begin(), build_.end());
  snapshot_.store(std::move(next), std::memory_order_release);
  since_publish_ = 0;
  if (obs::Observer* obs = obs::observer()) obs->on_serve_snapshot_swap();
}

void AvailabilityFeed::publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

sim::SimTime AvailabilityFeed::watermark(trace::MachineId machine) const {
  fgcs::require(machine < config_.machines,
                "serve watermark: machine id out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  const MachineState& s = *build_[machine];
  if (s.open) return s.open_start;
  if (s.episodes > 0) return s.last_start;
  return config_.horizon_start;
}

std::uint64_t AvailabilityFeed::events_ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::uint64_t AvailabilityFeed::snapshots_published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

}  // namespace fgcs::serve

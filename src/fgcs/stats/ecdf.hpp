// Empirical cumulative distribution function.
//
// Figure 6 plots the CDF of availability-interval lengths; Ecdf provides
// evaluation, quantiles, and a step-point series for regenerating the
// figure.
#pragma once

#include <span>
#include <vector>

namespace fgcs::stats {

/// P(X <= x) over an ascending-sorted sample span; 0 when empty. This is
/// the single evaluation expression shared by Ecdf::operator() and by
/// incremental callers that maintain their own sorted sample vectors
/// (fgcs::serve) — sharing it makes batch and online estimates
/// bit-identical by construction, not merely approximately equal.
double ecdf_at(std::span<const double> sorted, double x);

class Ecdf {
 public:
  Ecdf() = default;

  /// Builds from (unsorted) samples.
  explicit Ecdf(std::span<const double> samples);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// P(X <= x); 0 for empty ECDFs.
  double operator()(double x) const;

  /// Smallest sample v with P(X <= v) >= p.
  double quantile(double p) const;

  /// Fraction of mass in (lo, hi].
  double mass_between(double lo, double hi) const {
    return (*this)(hi) - (*this)(lo);
  }

  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
  double mean() const;

  /// Step points (x, F(x)) evaluated at each distinct sample value.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> steps() const;

  /// Evaluation on a regular grid [lo, hi] with `n` points (n >= 2),
  /// for fixed-resolution figure output.
  std::vector<Point> grid(double lo, double hi, std::size_t n) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Two-sample Kolmogorov–Smirnov statistic (max CDF gap). Used by tests to
/// check distribution sampler correctness and by the prediction study to
/// compare history windows.
double ks_statistic(const Ecdf& a, const Ecdf& b);

/// Asymptotic two-sample KS p-value (Q_KS of Numerical Recipes): the
/// probability of a gap at least this large under the null hypothesis
/// that both samples come from the same distribution.
double ks_p_value(const Ecdf& a, const Ecdf& b);

}  // namespace fgcs::stats

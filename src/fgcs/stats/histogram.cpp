#include "fgcs/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/util/error.hpp"

namespace fgcs::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, bool clamp)
    : lo_(lo), hi_(hi), clamp_(clamp), counts_(bins, 0) {
  fgcs::require(hi > lo, "Histogram: hi must be > lo");
  fgcs::require(bins >= 1, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  if (x < lo_) {
    if (!clamp_) {
      ++underflow_;
      return;
    }
    x = lo_;
  }
  if (x >= hi_) {
    if (!clamp_) {
      ++overflow_;
      return;
    }
    x = std::nextafter(hi_, lo_);
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

void HourOfDayBinner::add_day(const std::array<double, 24>& day) {
  days_.push_back(day);
}

HourOfDayBinner::HourStats HourOfDayBinner::hour(std::size_t h) const {
  FGCS_ASSERT(h < 24);
  HourStats s;
  if (days_.empty()) return s;
  double sum = 0.0;
  s.min = days_.front()[h];
  s.max = days_.front()[h];
  for (const auto& d : days_) {
    sum += d[h];
    s.min = std::min(s.min, d[h]);
    s.max = std::max(s.max, d[h]);
  }
  s.mean = sum / static_cast<double>(days_.size());
  if (days_.size() > 1) {
    double ss = 0.0;
    for (const auto& d : days_) ss += (d[h] - s.mean) * (d[h] - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(days_.size() - 1));
  }
  return s;
}

}  // namespace fgcs::stats

// Descriptive statistics over double samples.
//
// The trace analysis (§5) reports means, ranges, and per-window deviations;
// Summary computes them in one pass plus a sort for order statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fgcs::stats {

/// Order-agnostic summary of a sample set.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;

  /// Computes all fields. Returns a zeroed summary for empty input.
  static Summary of(std::span<const double> xs);
};

/// Linear-interpolation quantile of *sorted* data, p in [0, 1].
double quantile_sorted(std::span<const double> sorted, double p);

/// Convenience: copies, sorts, and evaluates the quantile.
double quantile(std::span<const double> xs, double p);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Sample variance (n-1); 0 when n < 2.
double variance(std::span<const double> xs);

/// Pearson correlation of two equal-length series; 0 when degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Lag-k autocorrelation of a series; 0 when degenerate.
double autocorrelation(std::span<const double> xs, std::size_t lag);

}  // namespace fgcs::stats

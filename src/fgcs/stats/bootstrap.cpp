#include "fgcs/stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "fgcs/stats/descriptive.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::stats {

BootstrapResult bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    util::RngStream& rng, std::size_t resamples, double confidence) {
  fgcs::require(confidence > 0.0 && confidence < 1.0,
                "bootstrap confidence must be in (0, 1)");
  BootstrapResult result;
  if (xs.empty()) return result;
  result.point = statistic(xs);
  if (xs.size() == 1 || resamples == 0) {
    result.lo = result.hi = result.point;
    return result;
  }
  std::vector<double> resample(xs.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = xs[rng.uniform_index(xs.size())];
    }
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  result.lo = quantile_sorted(estimates, alpha);
  result.hi = quantile_sorted(estimates, 1.0 - alpha);
  return result;
}

}  // namespace fgcs::stats

#include "fgcs/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/util/error.hpp"

namespace fgcs::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double ecdf_at(std::span<const double> sorted, double x) {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

double Ecdf::operator()(double x) const { return ecdf_at(sorted_, x); }

double Ecdf::quantile(double p) const {
  FGCS_ASSERT(p >= 0.0 && p <= 1.0);
  if (sorted_.empty()) return 0.0;
  if (p <= 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

double Ecdf::mean() const {
  if (sorted_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : sorted_) sum += v;
  return sum / static_cast<double>(sorted_.size());
}

std::vector<Ecdf::Point> Ecdf::steps() const {
  std::vector<Point> pts;
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    pts.push_back({sorted_[i], static_cast<double>(i + 1) /
                                   static_cast<double>(sorted_.size())});
  }
  return pts;
}

std::vector<Ecdf::Point> Ecdf::grid(double lo, double hi,
                                    std::size_t n) const {
  FGCS_ASSERT(n >= 2 && hi >= lo);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    pts.push_back({x, (*this)(x)});
  }
  return pts;
}

double ks_statistic(const Ecdf& a, const Ecdf& b) {
  double d = 0.0;
  for (double x : a.sorted_samples()) d = std::max(d, std::abs(a(x) - b(x)));
  for (double x : b.sorted_samples()) d = std::max(d, std::abs(a(x) - b(x)));
  return d;
}

double ks_p_value(const Ecdf& a, const Ecdf& b) {
  if (a.empty() || b.empty()) return 1.0;
  const double d = ks_statistic(a, b);
  const double n = static_cast<double>(a.size());
  const double m = static_cast<double>(b.size());
  const double ne = n * m / (n + m);
  const double sqrt_ne = std::sqrt(ne);
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  if (lambda < 1e-6) return 1.0;  // the series degenerates at zero gap
  // Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace fgcs::stats

// Random-variate samplers and simple fitters.
//
// All samplers draw from a util::RngStream so every simulation remains
// deterministic and platform-independent (<random> distributions are not
// guaranteed to produce identical streams across standard libraries).
#pragma once

#include <cstdint>
#include <span>

#include "fgcs/util/rng.hpp"

namespace fgcs::stats {

/// Poisson(lambda) via multiplication method (lambda < ~60) or normal
/// approximation beyond. lambda must be >= 0.
std::uint32_t sample_poisson(util::RngStream& rng, double lambda);

/// LogNormal with log-space parameters mu, sigma.
double sample_lognormal(util::RngStream& rng, double mu, double sigma);

/// LogNormal parameterized by its *mean* and log-space sigma:
/// mu = ln(mean) - sigma^2 / 2.
double sample_lognormal_mean(util::RngStream& rng, double mean, double sigma);

/// Weibull(shape k, scale lambda) by inversion.
double sample_weibull(util::RngStream& rng, double shape, double scale);

/// Pareto (Lomax-style, x >= x_min) with tail index alpha, by inversion.
double sample_pareto(util::RngStream& rng, double x_min, double alpha);

/// Normal truncated to [lo, hi] by rejection (lo < hi required).
double sample_truncated_normal(util::RngStream& rng, double mean,
                               double stddev, double lo, double hi);

/// Fitted parameters of an exponential distribution (MLE: mean).
struct ExponentialFit {
  double mean = 0.0;
  double log_likelihood = 0.0;
};
ExponentialFit fit_exponential(std::span<const double> xs);

/// Fitted parameters of a lognormal distribution (MLE on logs).
struct LognormalFit {
  double mu = 0.0;
  double sigma = 0.0;
  double log_likelihood = 0.0;
  double mean() const;
};
LognormalFit fit_lognormal(std::span<const double> xs);

}  // namespace fgcs::stats

#include "fgcs/stats/distributions.hpp"

#include <cmath>
#include <numbers>

#include "fgcs/util/error.hpp"

namespace fgcs::stats {

std::uint32_t sample_poisson(util::RngStream& rng, double lambda) {
  FGCS_ASSERT(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 60.0) {
    // Multiplication method: count uniforms until product < e^-lambda.
    const double limit = std::exp(-lambda);
    double product = 1.0;
    std::uint32_t k = 0;
    for (;;) {
      product *= rng.uniform();
      if (product < limit) return k;
      ++k;
      FGCS_ASSERT(k < 100000);  // numeric safety
    }
  }
  // Normal approximation with continuity correction for large lambda.
  const double x = rng.normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0u : static_cast<std::uint32_t>(x + 0.5);
}

double sample_lognormal(util::RngStream& rng, double mu, double sigma) {
  FGCS_ASSERT(sigma >= 0.0);
  return std::exp(mu + sigma * rng.normal());
}

double sample_lognormal_mean(util::RngStream& rng, double mean, double sigma) {
  FGCS_ASSERT(mean > 0.0);
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return sample_lognormal(rng, mu, sigma);
}

double sample_weibull(util::RngStream& rng, double shape, double scale) {
  FGCS_ASSERT(shape > 0.0 && scale > 0.0);
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double sample_pareto(util::RngStream& rng, double x_min, double alpha) {
  FGCS_ASSERT(x_min > 0.0 && alpha > 0.0);
  const double u = 1.0 - rng.uniform();  // (0, 1]
  return x_min / std::pow(u, 1.0 / alpha);
}

double sample_truncated_normal(util::RngStream& rng, double mean,
                               double stddev, double lo, double hi) {
  FGCS_ASSERT(lo < hi);
  FGCS_ASSERT(stddev >= 0.0);
  if (stddev == 0.0) {
    return std::min(hi, std::max(lo, mean));
  }
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Pathological truncation (interval far in the tail): fall back to
  // uniform within the interval rather than looping forever.
  return rng.uniform(lo, hi);
}

ExponentialFit fit_exponential(std::span<const double> xs) {
  ExponentialFit fit;
  if (xs.empty()) return fit;
  double sum = 0.0;
  for (double x : xs) {
    FGCS_ASSERT(x >= 0.0);
    sum += x;
  }
  fit.mean = sum / static_cast<double>(xs.size());
  if (fit.mean > 0.0) {
    const auto n = static_cast<double>(xs.size());
    fit.log_likelihood = -n * std::log(fit.mean) - sum / fit.mean;
  }
  return fit;
}

double LognormalFit::mean() const {
  return std::exp(mu + sigma * sigma / 2.0);
}

LognormalFit fit_lognormal(std::span<const double> xs) {
  LognormalFit fit;
  if (xs.empty()) return fit;
  const auto n = static_cast<double>(xs.size());
  double sum_log = 0.0;
  for (double x : xs) {
    FGCS_ASSERT(x > 0.0);
    sum_log += std::log(x);
  }
  fit.mu = sum_log / n;
  double ss = 0.0;
  for (double x : xs) {
    const double d = std::log(x) - fit.mu;
    ss += d * d;
  }
  fit.sigma = std::sqrt(ss / n);
  if (fit.sigma > 0.0) {
    double ll = 0.0;
    for (double x : xs) {
      const double z = (std::log(x) - fit.mu) / fit.sigma;
      ll += -std::log(x) - std::log(fit.sigma) -
            0.5 * std::log(2.0 * std::numbers::pi) - 0.5 * z * z;
    }
    fit.log_likelihood = ll;
  }
  return fit;
}

}  // namespace fgcs::stats

#include "fgcs/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/util/error.hpp"

namespace fgcs::stats {

double quantile_sorted(std::span<const double> sorted, double p) {
  FGCS_ASSERT(p >= 0.0 && p <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, p);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

Summary Summary::of(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.mean = stats::mean(xs);
  s.stddev = std::sqrt(variance(xs));
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.q25 = quantile_sorted(sorted, 0.25);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  FGCS_ASSERT(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() <= lag + 1) return 0.0;
  const double m = mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - m) * (xs[i] - m);
  }
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / den;
}

}  // namespace fgcs::stats

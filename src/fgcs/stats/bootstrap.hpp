// Bootstrap confidence intervals.
//
// §5.3 suggests "statistics on history trace to alleviate the effects of
// irregular data"; the prediction study uses bootstrap CIs to report the
// stability of history-window estimates.
#pragma once

#include <functional>
#include <span>

#include "fgcs/util/rng.hpp"

namespace fgcs::stats {

struct BootstrapResult {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;     // percentile CI lower bound
  double hi = 0.0;     // percentile CI upper bound
};

/// Percentile-bootstrap CI of `statistic` over `xs`.
/// `confidence` in (0, 1), e.g. 0.95.
BootstrapResult bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    util::RngStream& rng, std::size_t resamples = 1000,
    double confidence = 0.95);

}  // namespace fgcs::stats

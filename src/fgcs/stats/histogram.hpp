// Fixed-bin histogram and hour-of-day binning.
//
// Figure 7 reports, for each hour of the day, the mean and range (over
// days) of unavailability occurrences in that hour. HourOfDayBinner
// aggregates per-day hourly counts into exactly that shape.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fgcs::stats {

/// Equal-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins when `clamp` is set, otherwise they are dropped (counted in
/// under/overflow).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins, bool clamp = false);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Center of a bin.
  double bin_center(std::size_t bin) const;
  /// Lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  /// Upper edge of a bin.
  double bin_hi(std::size_t bin) const;

  /// count(bin) / total(), 0 if the histogram is empty.
  double fraction(std::size_t bin) const;

 private:
  double lo_, hi_;
  bool clamp_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Per-hour-of-day statistics across many days (Figure 7's mean + range).
class HourOfDayBinner {
 public:
  /// Adds one day's 24 hourly values.
  void add_day(const std::array<double, 24>& day);

  std::size_t days() const { return days_.size(); }

  struct HourStats {
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
  };

  /// Statistics over days for the given hour (0..23).
  HourStats hour(std::size_t h) const;

 private:
  std::vector<std::array<double, 24>> days_;
};

}  // namespace fgcs::stats

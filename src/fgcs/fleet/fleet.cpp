#include "fgcs/fleet/fleet.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "fgcs/trace/format_v2.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::fleet {

namespace {

/// Partition cap: keeps segment-file count bounded for very large fleets
/// while still giving small fleets one machine per shard (maximum
/// scheduling freedom).
constexpr std::uint32_t kMaxShards = 64;

std::string segment_name(const std::string& dir, std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04zu.trc2", shard);
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += name;
  return path;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw IoError("cannot create spill directory: " + dir);
}

}  // namespace

void FleetConfig::validate() const {
  testbed.validate();
}

std::uint32_t FleetConfig::effective_shard_machines() const {
  if (shard_machines > 0) return shard_machines;
  // Ceil-divide so shard count never exceeds kMaxShards; small fleets get
  // one machine per shard.
  return std::max<std::uint32_t>(
      1, (testbed.machines + kMaxShards - 1) / kMaxShards);
}

std::vector<std::string> FleetResult::segment_paths() const {
  std::vector<std::string> paths;
  if (!spilled) return paths;
  paths.reserve(shards.size());
  for (const auto& s : shards) paths.push_back(s.segment_path);
  return paths;
}

trace::TraceSet FleetResult::load_trace() const {
  if (!spilled) {
    fgcs::require(trace.has_value(), "FleetResult holds no in-memory trace");
    return *trace;
  }
  trace::TraceSet out(machines, horizon_start, horizon_end);
  out.reserve(total_records);
  for (const auto& shard : shards) {
    const trace::TraceView view(shard.segment_path);
    view.for_each([&](const trace::UnavailabilityRecord& r) { out.add(r); });
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& config) {
  config.validate();
  const core::TestbedRunner runner(config.testbed);
  const bool spill = !config.spill_dir.empty();
  if (spill) ensure_dir(config.spill_dir);

  const std::uint32_t machines = config.testbed.machines;
  const std::uint32_t per_shard = config.effective_shard_machines();
  const std::size_t shard_count = (machines + per_shard - 1) / per_shard;

  FleetResult result;
  result.machines = machines;
  result.days = config.testbed.days;
  result.horizon_start = runner.horizon_start();
  result.horizon_end = runner.horizon_end();
  result.spilled = spill;
  result.shards.resize(shard_count);

  // In-memory mode parks each shard's records here until the ordered
  // merge below; spill mode streams them straight to disk instead.
  std::vector<std::vector<trace::UnavailabilityRecord>> shard_records(
      spill ? 0 : shard_count);

  const auto run_shard = [&](std::size_t s) {
    ShardSummary& summary = result.shards[s];
    summary.first_machine = static_cast<std::uint32_t>(s) * per_shard;
    summary.machine_count =
        std::min(per_shard, machines - summary.first_machine);

    // All obs hooks on this thread land in the shard's plain counters for
    // the duration; one merge at the end touches the shared atomics.
    const obs::ShardScope scope(&summary.counters);

    std::optional<trace::TraceWriterV2> writer;
    if (spill) {
      summary.segment_path = segment_name(config.spill_dir, s);
      writer.emplace(summary.segment_path, machines, result.horizon_start,
                     result.horizon_end);
    }
    std::vector<trace::UnavailabilityRecord> local;
    for (std::uint32_t i = 0; i < summary.machine_count; ++i) {
      const auto machine =
          static_cast<trace::MachineId>(summary.first_machine + i);
      auto records = runner.run(machine);
      summary.records += records.size();
      if (writer) {
        // Finished machine's records leave memory immediately.
        writer->append(records);
      } else {
        local.insert(local.end(), records.begin(), records.end());
      }
    }
    if (writer) {
      writer->finish();
    } else {
      shard_records[s] = std::move(local);
    }
  };

  // A local pool sized to the requested thread count; the caller
  // participates in parallel_for, so `threads` means total executors.
  const std::size_t requested = config.threads != 0
                                    ? config.threads
                                    : util::configured_thread_count();
  util::ThreadPool pool(requested > 1 ? requested - 1 : 0);
  util::parallel_for(shard_count, run_shard, pool);

  // Fold the per-shard counters into the installed observer (if any) in
  // shard order, off the parallel section — deterministic merge order.
  if (auto* o = obs::observer()) {
    for (const auto& s : result.shards) o->merge_shard(s.counters);
  }
  for (const auto& s : result.shards) result.total_records += s.records;

  if (!spill) {
    trace::TraceSet trace(machines, result.horizon_start, result.horizon_end);
    trace.reserve(result.total_records);
    // Shard-major, machine-major: the canonical order, so records() stays
    // re-sort-free.
    for (auto& records : shard_records) {
      for (const auto& r : records) trace.add(r);
      records.clear();
      records.shrink_to_fit();
    }
    result.trace.emplace(std::move(trace));
  }
  return result;
}

}  // namespace fgcs::fleet

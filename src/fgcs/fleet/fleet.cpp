#include "fgcs/fleet/fleet.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "fgcs/obs/timeseries.hpp"
#include "fgcs/trace/format_v2.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::fleet {

namespace {

/// Partition cap: keeps segment-file count bounded for very large fleets
/// while still giving small fleets one machine per shard (maximum
/// scheduling freedom).
constexpr std::uint32_t kMaxShards = 64;

std::string segment_name(const std::string& dir, std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04zu.trc2", shard);
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += name;
  return path;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw IoError("cannot create spill directory: " + dir);
}

std::string shard_label(std::size_t shard) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04zu", shard);
  return buf;
}

/// Writes the sweep's FGCSMET1 segment: fleet totals (unlabeled), then
/// each shard's series under {shard=NNNN} plus two meta gauges locating
/// the shard in the machine range. Single-threaded, shard order — the
/// bytes depend only on the config and seed.
void write_metrics_segment(const FleetConfig& config, const FleetResult& result,
                           const std::vector<obs::TimeSeriesShard>& shards) {
  obs::MetricsWriterV1 writer(config.metrics_path, result.horizon_start,
                              result.horizon_end, config.metrics_resolution);
  obs::TimeSeriesShard totals(result.horizon_start, result.horizon_end,
                              config.metrics_resolution);
  for (const auto& ts : shards) totals.add(ts);
  totals.write_series(writer, {});
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string label = shard_label(s);
    shards[s].write_series(writer, {{"shard", label}});
    const auto first = writer.series_id(
        "fleet.shard_first_machine{shard=" + label + "}",
        obs::SeriesKind::kGauge);
    const auto count = writer.series_id(
        "fleet.shard_machines{shard=" + label + "}", obs::SeriesKind::kGauge);
    writer.append(first, result.horizon_start,
                  static_cast<double>(result.shards[s].first_machine));
    writer.append(count, result.horizon_start,
                  static_cast<double>(result.shards[s].machine_count));
  }
  writer.finish();
}

}  // namespace

void FleetConfig::validate() const {
  testbed.validate();
  if (!metrics_path.empty()) {
    fgcs::require(metrics_resolution > sim::SimDuration::zero(),
                  "metrics_resolution must be positive");
  }
}

std::size_t FleetConfig::shard_count() const {
  const std::uint32_t per_shard = effective_shard_machines();
  return (testbed.machines + per_shard - 1) / per_shard;
}

std::uint32_t FleetConfig::effective_shard_machines() const {
  if (shard_machines > 0) return shard_machines;
  // Ceil-divide so shard count never exceeds kMaxShards; small fleets get
  // one machine per shard.
  return std::max<std::uint32_t>(
      1, (testbed.machines + kMaxShards - 1) / kMaxShards);
}

std::vector<std::string> FleetResult::segment_paths() const {
  std::vector<std::string> paths;
  if (!spilled) return paths;
  paths.reserve(shards.size());
  for (const auto& s : shards) paths.push_back(s.segment_path);
  return paths;
}

trace::TraceSet FleetResult::load_trace() const {
  if (!spilled) {
    fgcs::require(trace.has_value(), "FleetResult holds no in-memory trace");
    return *trace;
  }
  trace::TraceSet out(machines, horizon_start, horizon_end);
  out.reserve(total_records);
  for (const auto& shard : shards) {
    const trace::TraceView view(shard.segment_path);
    view.for_each([&](const trace::UnavailabilityRecord& r) { out.add(r); });
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& config) {
  config.validate();
  const core::TestbedRunner runner(config.testbed);
  const bool spill = !config.spill_dir.empty();
  if (spill) ensure_dir(config.spill_dir);

  const std::uint32_t machines = config.testbed.machines;
  const std::uint32_t per_shard = config.effective_shard_machines();
  const std::size_t shard_count = config.shard_count();
  const bool want_metrics = !config.metrics_path.empty();
  if (config.progress != nullptr) {
    fgcs::require(config.progress->shard_machines_done.size() >= shard_count,
                  "FleetProgress was constructed for fewer shards than the "
                  "sweep produces");
  }

  FleetResult result;
  result.machines = machines;
  result.days = config.testbed.days;
  result.horizon_start = runner.horizon_start();
  result.horizon_end = runner.horizon_end();
  result.spilled = spill;
  result.shards.resize(shard_count);

  // In-memory mode parks each shard's records here until the ordered
  // merge below; spill mode streams them straight to disk instead.
  std::vector<std::vector<trace::UnavailabilityRecord>> shard_records(
      spill ? 0 : shard_count);

  // The hooks a shard's machines fire only reach the time-series bins
  // through an installed observer; when telemetry is requested and the
  // caller didn't install one, provide a local observer for the sweep.
  std::optional<obs::Observer> local_observer;
  std::optional<obs::ScopedObserver> local_observer_guard;
  if (want_metrics && obs::observer() == nullptr) {
    local_observer.emplace();
    local_observer_guard.emplace(&*local_observer);
  }

  // One time-series shard per fleet shard; the binned counters fold into
  // fleet totals and spill to the segment after the parallel section.
  std::vector<obs::TimeSeriesShard> ts_shards;
  if (want_metrics) {
    ts_shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      ts_shards.emplace_back(result.horizon_start, result.horizon_end,
                             config.metrics_resolution);
    }
  }

  const auto run_shard = [&](std::size_t s) {
    ShardSummary& summary = result.shards[s];
    summary.first_machine = static_cast<std::uint32_t>(s) * per_shard;
    summary.machine_count =
        std::min(per_shard, machines - summary.first_machine);

    // All obs hooks on this thread land in the shard's plain counters for
    // the duration; one merge at the end touches the shared atomics. The
    // time-series scope routes the sim-time-stamped hooks into this
    // shard's bins the same way.
    const obs::ShardScope scope(&summary.counters);
    std::optional<obs::TimeSeriesScope> ts_scope;
    if (want_metrics) ts_scope.emplace(&ts_shards[s]);

    std::optional<trace::TraceWriterV2> writer;
    if (spill) {
      summary.segment_path = segment_name(config.spill_dir, s);
      writer.emplace(summary.segment_path, machines, result.horizon_start,
                     result.horizon_end);
    }
    std::vector<trace::UnavailabilityRecord> local;
    // Reused across the shard's machines: the arena's chunks and the
    // record buffer's capacity persist, so after the first machine warms
    // them a machine simulation allocates nothing.
    core::MachineScratch scratch;
    std::vector<trace::UnavailabilityRecord> records;
    for (std::uint32_t i = 0; i < summary.machine_count; ++i) {
      const auto machine =
          static_cast<trace::MachineId>(summary.first_machine + i);
      runner.run_into(machine, scratch, records);
      summary.records += records.size();
      if (config.progress != nullptr) {
        config.progress->machines_done.fetch_add(1, std::memory_order_relaxed);
        config.progress->records.fetch_add(records.size(),
                                           std::memory_order_relaxed);
        config.progress->shard_machines_done[s].fetch_add(
            1, std::memory_order_relaxed);
      }
      if (auto* o = obs::observer()) o->on_fleet_machine_done();
      if (writer) {
        // Finished machine's records leave memory immediately.
        writer->append(records);
      } else {
        local.insert(local.end(), records.begin(), records.end());
      }
    }
    if (writer) {
      writer->finish();
    } else {
      shard_records[s] = std::move(local);
    }
    if (config.progress != nullptr) {
      config.progress->shards_completed.fetch_add(1, std::memory_order_relaxed);
    }
    if (auto* o = obs::observer()) {
      o->on_fleet_shard_done(s, summary.first_machine, summary.machine_count,
                             result.horizon_end);
    }
    // With telemetry on, the sample count lived in the bins (the
    // detector-sample fast path skips the shard counter); fold the total
    // back now that the shard is done.
    if (want_metrics) {
      summary.counters.detector_samples += ts_shards[s].total_samples();
    }
  };

  // A local pool sized to the requested thread count; the caller
  // participates in parallel_for, so `threads` means total executors.
  const std::size_t requested = config.threads != 0
                                    ? config.threads
                                    : util::configured_thread_count();
  util::ThreadPool pool(requested > 1 ? requested - 1 : 0);
  util::parallel_for(shard_count, run_shard, pool);

  // Fold the per-shard counters into the installed observer (if any) in
  // shard order, off the parallel section — deterministic merge order.
  if (auto* o = obs::observer()) {
    for (const auto& s : result.shards) o->merge_shard(s.counters);
  }
  for (const auto& s : result.shards) result.total_records += s.records;

  if (want_metrics) {
    write_metrics_segment(config, result, ts_shards);
    result.metrics_path = config.metrics_path;
  }

  if (!spill) {
    trace::TraceSet trace(machines, result.horizon_start, result.horizon_end);
    trace.reserve(result.total_records);
    // Shard-major, machine-major: the canonical order, so records() stays
    // re-sort-free.
    for (auto& records : shard_records) {
      for (const auto& r : records) trace.add(r);
      records.clear();
      records.shrink_to_fit();
    }
    result.trace.emplace(std::move(trace));
  }
  return result;
}

}  // namespace fgcs::fleet

#include "fgcs/fleet/fleet.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <memory>
#include <utility>

#include "fgcs/obs/timeseries.hpp"
#include "fgcs/recover/manifest.hpp"
#include "fgcs/recover/shard_state.hpp"
#include "fgcs/trace/format_v2.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::fleet {

namespace {

/// Partition cap: keeps segment-file count bounded for very large fleets
/// while still giving small fleets one machine per shard (maximum
/// scheduling freedom).
constexpr std::uint32_t kMaxShards = 64;

std::string join_path(const std::string& dir, const std::string& name) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += name;
  return path;
}

std::string segment_file_name(std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04zu.trc2", shard);
  return name;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw IoError("cannot create spill directory: " + dir);
}

std::string shard_label(std::size_t shard) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04zu", shard);
  return buf;
}

/// Everything a machine result depends on, hashed into the checkpoint
/// fingerprint so resume refuses to splice segments from a different
/// sweep.
recover::SweepIdentity sweep_identity(const FleetConfig& config) {
  recover::SweepIdentity id;
  const auto& tb = config.testbed;
  id.machines = tb.machines;
  id.days = tb.days;
  id.start_dow = static_cast<int>(tb.start_dow);
  id.seed = tb.seed;
  id.shard_machines = config.effective_shard_machines();
  id.fault_plan = tb.faults.str();
  id.metrics = !config.metrics_path.empty();
  id.metrics_resolution_us =
      id.metrics ? config.metrics_resolution.as_micros() : 0;
  id.ram_mb = tb.ram_mb;
  id.kernel_mb = tb.kernel_mb;
  id.th1 = tb.policy.th1;
  id.th2 = tb.policy.th2;
  id.sample_period_us = tb.policy.sample_period.as_micros();
  return id;
}

/// Writes the sweep's FGCSMET1 segment: fleet totals (unlabeled), then
/// each shard's series under {shard=NNNN} plus two meta gauges locating
/// the shard in the machine range. Single-threaded, shard order — the
/// bytes depend only on the config and seed.
void write_metrics_segment(const FleetConfig& config, const FleetResult& result,
                           const std::vector<obs::TimeSeriesShard>& shards) {
  obs::MetricsWriterV1 writer(config.metrics_path, result.horizon_start,
                              result.horizon_end, config.metrics_resolution);
  obs::TimeSeriesShard totals(result.horizon_start, result.horizon_end,
                              config.metrics_resolution);
  for (const auto& ts : shards) totals.add(ts);
  totals.write_series(writer, {});
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string label = shard_label(s);
    shards[s].write_series(writer, {{"shard", label}});
    const auto first = writer.series_id(
        "fleet.shard_first_machine{shard=" + label + "}",
        obs::SeriesKind::kGauge);
    const auto count = writer.series_id(
        "fleet.shard_machines{shard=" + label + "}", obs::SeriesKind::kGauge);
    writer.append(first, result.horizon_start,
                  static_cast<double>(result.shards[s].first_machine));
    writer.append(count, result.horizon_start,
                  static_cast<double>(result.shards[s].machine_count));
  }
  writer.finish();
}

}  // namespace

void FleetConfig::validate() const {
  testbed.validate();
  if (!metrics_path.empty()) {
    fgcs::require(metrics_resolution > sim::SimDuration::zero(),
                  "metrics_resolution must be positive");
  }
  fgcs::require(max_shard_retries >= 1, "max_shard_retries must be >= 1");
  fgcs::require(!resume || !spill_dir.empty(),
                "resume requires a spill_dir (the checkpoint directory)");
}

std::size_t FleetConfig::shard_count() const {
  const std::uint32_t per_shard = effective_shard_machines();
  return (testbed.machines + per_shard - 1) / per_shard;
}

std::uint32_t FleetConfig::effective_shard_machines() const {
  if (shard_machines > 0) return shard_machines;
  // Ceil-divide so shard count never exceeds kMaxShards; small fleets get
  // one machine per shard.
  return std::max<std::uint32_t>(
      1, (testbed.machines + kMaxShards - 1) / kMaxShards);
}

std::vector<std::string> FleetResult::segment_paths() const {
  std::vector<std::string> paths;
  if (!spilled) return paths;
  paths.reserve(shards.size());
  for (const auto& s : shards) paths.push_back(s.segment_path);
  return paths;
}

trace::TraceSet FleetResult::load_trace() const {
  if (!spilled) {
    fgcs::require(trace.has_value(), "FleetResult holds no in-memory trace");
    return *trace;
  }
  trace::TraceSet out(machines, horizon_start, horizon_end);
  out.reserve(total_records);
  for (const auto& shard : shards) {
    const trace::TraceView view(shard.segment_path);
    view.for_each([&](const trace::UnavailabilityRecord& r) { out.add(r); });
  }
  return out;
}

FleetResult run_fleet(const FleetConfig& config) {
  config.validate();
  const core::TestbedRunner runner(config.testbed);
  const bool spill = !config.spill_dir.empty();
  if (spill) ensure_dir(config.spill_dir);

  const std::uint32_t machines = config.testbed.machines;
  const std::uint32_t per_shard = config.effective_shard_machines();
  const std::size_t shard_count = config.shard_count();
  const bool want_metrics = !config.metrics_path.empty();
  const bool checkpointing = spill && config.checkpoint;
  if (config.progress != nullptr) {
    fgcs::require(config.progress->shard_machines_done.size() >= shard_count,
                  "FleetProgress was constructed for fewer shards than the "
                  "sweep produces");
  }

  FleetResult result;
  result.machines = machines;
  result.days = config.testbed.days;
  result.horizon_start = runner.horizon_start();
  result.horizon_end = runner.horizon_end();
  result.spilled = spill;
  result.shards.resize(shard_count);

  // In-memory mode parks each shard's records here until the ordered
  // merge below; spill mode streams them straight to disk instead.
  std::vector<std::vector<trace::UnavailabilityRecord>> shard_records(
      spill ? 0 : shard_count);

  // The hooks a shard's machines fire only reach the time-series bins
  // through an installed observer; when telemetry is requested and the
  // caller didn't install one, provide a local observer for the sweep.
  std::optional<obs::Observer> local_observer;
  std::optional<obs::ScopedObserver> local_observer_guard;
  if (want_metrics && obs::observer() == nullptr) {
    local_observer.emplace();
    local_observer_guard.emplace(&*local_observer);
  }

  // One time-series shard per fleet shard; the binned counters fold into
  // fleet totals and spill to the segment after the parallel section.
  std::vector<obs::TimeSeriesShard> ts_shards;
  if (want_metrics) {
    ts_shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      ts_shards.emplace_back(result.horizon_start, result.horizon_end,
                             config.metrics_resolution);
    }
  }

  // --- resume: splice validated checkpoints, serially, before the sweep.
  const std::uint64_t fingerprint =
      (checkpointing || config.resume)
          ? recover::fingerprint(sweep_identity(config))
          : 0;
  std::vector<char> resumed(shard_count, 0);
  std::vector<recover::ShardCheckpoint> preloaded;
  if (config.resume) {
    recover::ResumePlan plan = recover::plan_resume(
        config.spill_dir, fingerprint, shard_count, config.testbed.seed);
    result.resume_dropped = std::move(plan.dropped);
    for (const auto& cp : plan.valid) {
      const std::size_t s = static_cast<std::size_t>(cp.shard);
      const std::uint32_t first = static_cast<std::uint32_t>(s) * per_shard;
      const std::uint32_t count = std::min(per_shard, machines - first);
      // plan_resume validated files against the manifest; the manifest's
      // geometry must also match *this* sweep's partition (it does unless
      // the manifest was hand-edited — the fingerprint pins the inputs).
      if (cp.first_machine != first || cp.machine_count != count ||
          cp.segment_name != segment_file_name(s)) {
        result.resume_dropped.push_back(
            "shard " + std::to_string(s) +
            ": manifest geometry does not match the sweep partition");
        continue;
      }
      recover::ShardState state;
      try {
        state = recover::read_shard_state(
            join_path(config.spill_dir, cp.state_name));
      } catch (const std::exception& e) {
        result.resume_dropped.push_back("shard " + std::to_string(s) + ": " +
                                        e.what());
        continue;
      }
      if (want_metrics && state.ts_bins.empty()) {
        result.resume_dropped.push_back(
            "shard " + std::to_string(s) +
            ": checkpointed without metrics; this sweep collects them");
        continue;
      }
      if (state.records != cp.records) {
        result.resume_dropped.push_back(
            "shard " + std::to_string(s) +
            ": state blob and manifest disagree on record count");
        continue;
      }
      if (want_metrics) {
        try {
          ts_shards[s].load_bins(state.ts_bins.data(), state.ts_bins.size());
        } catch (const std::exception& e) {
          result.resume_dropped.push_back("shard " + std::to_string(s) + ": " +
                                          e.what());
          continue;
        }
      }
      ShardSummary& summary = result.shards[s];
      summary.first_machine = first;
      summary.machine_count = count;
      summary.records = state.records;
      summary.segment_path = join_path(config.spill_dir, cp.segment_name);
      summary.counters = state.counters;
      summary.resumed = true;
      resumed[s] = 1;
      preloaded.push_back(cp);
      ++result.resumed_shards;
    }
  }

  // The durable manifest log; resumed shards are preloaded so the next
  // commit's rewrite preserves them.
  std::unique_ptr<recover::CheckpointLog> log;
  if (checkpointing) {
    log = std::make_unique<recover::CheckpointLog>(config.spill_dir,
                                                   fingerprint, shard_count);
    if (!preloaded.empty()) log->preload(preloaded);
  }

  const auto run_shard = [&](std::size_t s) {
    ShardSummary& summary = result.shards[s];
    if (resumed[s]) {
      // Spliced from the checkpoint: account for it in the live progress
      // counters (a monitor should see the sweep as near-done, not
      // stalled), but fire no per-machine observer hooks — nothing was
      // simulated, and the restored CounterShard already carries the
      // shard's telemetry.
      if (config.progress != nullptr) {
        config.progress->machines_done.fetch_add(summary.machine_count,
                                                 std::memory_order_relaxed);
        config.progress->records.fetch_add(summary.records,
                                           std::memory_order_relaxed);
        config.progress->shard_machines_done[s].fetch_add(
            summary.machine_count, std::memory_order_relaxed);
        config.progress->shards_completed.fetch_add(1,
                                                    std::memory_order_relaxed);
      }
      return;
    }
    summary.first_machine = static_cast<std::uint32_t>(s) * per_shard;
    summary.machine_count =
        std::min(per_shard, machines - summary.first_machine);

    // Supervised attempt loop. Everything a failed attempt touched is
    // attempt-local (counters, time-series bins, the segment file —
    // re-opened with O_TRUNC on retry), so a retry starts from a clean
    // slate and the surviving attempt's output is identical to a
    // never-failed run's. A machine whose exception keeps failing
    // attempts is quarantined once it burns max_shard_retries of them;
    // the attempt cap bounds failures no machine explains (e.g. the
    // segment directory vanishing mid-sweep) — those rethrow.
    std::vector<trace::MachineId> quarantined;
    std::vector<std::pair<trace::MachineId, int>> failures;
    std::uint32_t seg_crc = 0;
    std::uint64_t seg_bytes = 0;
    const long max_attempts =
        static_cast<long>(config.max_shard_retries) * summary.machine_count + 1;
    for (long attempt = 1;; ++attempt) {
      obs::CounterShard counters;
      std::optional<obs::TimeSeriesShard> ts_local;
      std::uint64_t attempt_records = 0;
      std::uint64_t progress_machines = 0;
      std::uint64_t progress_records = 0;
      std::uint32_t machines_done = 0;
      std::optional<trace::MachineId> current;
      std::optional<trace::TraceWriterV2> writer;
      try {
        // All obs hooks on this thread land in the attempt's counters for
        // the duration; one merge at the end touches the shared atomics.
        // The time-series scope routes the sim-time-stamped hooks into
        // the attempt's bins the same way.
        const obs::ShardScope scope(&counters);
        std::optional<obs::TimeSeriesScope> ts_scope;
        if (want_metrics) {
          ts_local.emplace(result.horizon_start, result.horizon_end,
                           config.metrics_resolution);
          ts_scope.emplace(&*ts_local);
        }
        if (spill) {
          summary.segment_path =
              join_path(config.spill_dir, segment_file_name(s));
          writer.emplace(summary.segment_path, machines, result.horizon_start,
                         result.horizon_end);
        }
        std::vector<trace::UnavailabilityRecord> local;
        // Reused across the shard's machines: the arena's chunks and the
        // record buffer's capacity persist, so after the first machine
        // warms them a machine simulation allocates nothing.
        core::MachineScratch scratch;
        std::vector<trace::UnavailabilityRecord> records;
        for (std::uint32_t i = 0; i < summary.machine_count; ++i) {
          const auto machine =
              static_cast<trace::MachineId>(summary.first_machine + i);
          if (std::binary_search(quarantined.begin(), quarantined.end(),
                                 machine)) {
            continue;
          }
          current = machine;
          if (config.machine_hook) {
            config.machine_hook(machine, static_cast<int>(attempt));
          }
          runner.run_into(machine, scratch, records);
          attempt_records += records.size();
          ++machines_done;
          if (config.progress != nullptr) {
            config.progress->machines_done.fetch_add(
                1, std::memory_order_relaxed);
            config.progress->records.fetch_add(records.size(),
                                               std::memory_order_relaxed);
            config.progress->shard_machines_done[s].fetch_add(
                1, std::memory_order_relaxed);
            ++progress_machines;
            progress_records += records.size();
          }
          if (writer) {
            // Finished machine's records leave memory immediately.
            writer->append(records);
          } else {
            local.insert(local.end(), records.begin(), records.end());
          }
        }
        if (writer) {
          writer->finish();
          seg_crc = writer->content_crc();
          seg_bytes = writer->bytes_written();
        } else {
          shard_records[s] = std::move(local);
        }
        // Success: the attempt's state becomes the shard's.
        summary.counters = counters;
        summary.records = attempt_records;
        summary.quarantined = quarantined;
        if (want_metrics) ts_shards[s] = std::move(*ts_local);
      } catch (const std::exception&) {
        // Roll the attempt's contribution back out of the live progress
        // counters — the display stays a count of *kept* work.
        if (config.progress != nullptr) {
          config.progress->machines_done.fetch_sub(progress_machines,
                                                   std::memory_order_relaxed);
          config.progress->records.fetch_sub(progress_records,
                                             std::memory_order_relaxed);
          config.progress->shard_machines_done[s].fetch_sub(
              progress_machines, std::memory_order_relaxed);
        }
        ++summary.retries;
        if (attempt >= max_attempts || !current.has_value()) throw;
        const trace::MachineId failed = *current;
        if (auto* o = obs::observer()) {
          o->on_fleet_shard_retry(s, failed, static_cast<int>(attempt),
                                  result.horizon_end);
        }
        auto it =
            std::find_if(failures.begin(), failures.end(),
                         [&](const auto& f) { return f.first == failed; });
        if (it == failures.end()) {
          failures.emplace_back(failed, 1);
          it = std::prev(failures.end());
        } else {
          ++it->second;
        }
        if (it->second >= config.max_shard_retries) {
          quarantined.insert(std::lower_bound(quarantined.begin(),
                                              quarantined.end(), failed),
                             failed);
          if (auto* o = obs::observer()) {
            o->on_fleet_machine_quarantined(failed, it->second,
                                            result.horizon_end);
          }
        }
        continue;  // retry the shard
      }
      // Per-machine progress hooks, fired once for the kept attempt only
      // (a discarded attempt must not inflate the registry's counter).
      if (auto* o = obs::observer()) {
        for (std::uint32_t i = 0; i < machines_done; ++i) {
          o->on_fleet_machine_done();
        }
      }
      break;
    }
    if (config.progress != nullptr) {
      config.progress->shards_completed.fetch_add(1, std::memory_order_relaxed);
    }
    if (auto* o = obs::observer()) {
      o->on_fleet_shard_done(s, summary.first_machine, summary.machine_count,
                             result.horizon_end);
    }
    // With telemetry on, the sample count lived in the bins (the
    // detector-sample fast path skips the shard counter); fold the total
    // back now that the shard is done — before the state blob is written,
    // so a resumed shard restores the folded value.
    if (want_metrics) {
      summary.counters.detector_samples += ts_shards[s].total_samples();
    }
    if (log) {
      // Segment and state blob are durable before the manifest claims the
      // shard (write-ahead of the data, behind of the claim).
      recover::ShardCheckpoint cp;
      cp.shard = s;
      cp.first_machine = summary.first_machine;
      cp.machine_count = summary.machine_count;
      cp.records = summary.records;
      cp.segment_name = segment_file_name(s);
      cp.state_name = recover::shard_state_name(s);
      cp.rng_key =
          recover::shard_rng_key(config.testbed.seed, summary.first_machine);
      cp.segment_crc = seg_crc;
      cp.segment_bytes = seg_bytes;
      recover::ShardState state;
      state.counters = summary.counters;
      state.records = summary.records;
      if (want_metrics) ts_shards[s].save_bins(state.ts_bins);
      cp.state_crc = recover::write_shard_state(
          join_path(config.spill_dir, cp.state_name), state);
      log->commit(cp);
    }
  };

  // A local pool sized to the requested thread count; the caller
  // participates in parallel_for, so `threads` means total executors.
  const std::size_t requested = config.threads != 0
                                    ? config.threads
                                    : util::configured_thread_count();
  util::ThreadPool pool(requested > 1 ? requested - 1 : 0);
  util::parallel_for(shard_count, run_shard, pool);

  // One durable sync for the whole sweep: intermediate manifest rewrites
  // are rename-only (crash-safe against process death via the page
  // cache), so this is where the completed claim trail becomes durable
  // against OS crash as well.
  if (log) log->sync();

  // Fold the per-shard counters into the installed observer (if any) in
  // shard order, off the parallel section — deterministic merge order.
  if (auto* o = obs::observer()) {
    for (const auto& s : result.shards) o->merge_shard(s.counters);
  }
  for (const auto& s : result.shards) {
    result.total_records += s.records;
    result.total_retries += s.retries;
    result.quarantined.insert(result.quarantined.end(), s.quarantined.begin(),
                              s.quarantined.end());
  }
  std::sort(result.quarantined.begin(), result.quarantined.end());

  if (want_metrics) {
    write_metrics_segment(config, result, ts_shards);
    result.metrics_path = config.metrics_path;
  }

  if (!spill) {
    trace::TraceSet trace(machines, result.horizon_start, result.horizon_end);
    trace.reserve(result.total_records);
    // Shard-major, machine-major: the canonical order, so records() stays
    // re-sort-free.
    for (auto& records : shard_records) {
      for (const auto& r : records) trace.add(r);
      records.clear();
      records.shrink_to_fit();
    }
    result.trace.emplace(std::move(trace));
  }
  return result;
}

}  // namespace fgcs::fleet

// Fleet-scale sweep engine: sharded simulation with streaming traces.
//
// run_testbed() holds every machine's records in one TraceSet and funnels
// every obs counter through shared atomics — fine for the paper's 20
// machines, hostile to fleets of thousands. run_fleet() partitions the
// machine range into contiguous shards and runs each shard as one unit of
// work on the pool:
//
//   shard worker                         global
//   ------------------------------       ---------------------------
//   obs::CounterShard (plain u64) --+--> Observer::merge_shard (once)
//   core::TestbedRunner::run(m)     |
//   trace::TraceWriterV2 segment ---+--> spill_dir/shard-NNNN.trc2
//
// Each shard owns a thread-local obs shard (hooks bump plain uint64_ts —
// no cross-core cache-line ping-pong on fault.injected /
// os.ticks_fast_forwarded) and, in spill mode, a streaming v2 trace
// writer that appends finished machines' records to its own segment, so
// peak memory is O(shard block) instead of O(fleet).
//
// Determinism: the shard partition is a pure function of the config (not
// the thread count), every machine simulates on its own seeded substream,
// and shard-major/machine-major ordering is the TraceSet canonical order —
// so the merged trace is bit-identical to run_testbed() for any thread
// count, and segment files are byte-identical run to run.
//
// Crash tolerance (spill mode): each sealed shard also commits a durable
// checkpoint — a state blob next to its segment, plus a line in the
// directory's MANIFEST (fgcs::recover) — and `resume = true` re-runs only
// the shards whose checkpoints don't validate. Because shards are
// deterministic and their obs state is restored from the blobs, a resumed
// sweep's merged trace and metrics segment are byte-identical to an
// uninterrupted run's. Shard workers run under a supervisor: a machine
// that throws fails its shard's attempt, the attempt is retried with
// everything attempt-local discarded, and a machine that keeps failing is
// quarantined (excluded, counted, flight-recorder-dumped) so one poison
// machine degrades the sweep instead of sinking it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::fleet {

/// Live progress counters for a running sweep. The caller allocates one,
/// points FleetConfig::progress at it, and polls from another thread
/// (e.g. the CLI's wall-clock progress monitor) while run_fleet executes.
/// All loads/stores are relaxed: the values are monotone counts for
/// display, not synchronization.
struct FleetProgress {
  explicit FleetProgress(std::size_t shard_count)
      : shard_machines_done(shard_count) {}

  std::atomic<std::uint64_t> machines_done{0};
  std::atomic<std::uint64_t> records{0};
  std::atomic<std::uint64_t> shards_completed{0};
  /// Per-shard machine completions — a stall watchdog compares snapshots
  /// to flag shards making no progress.
  std::vector<std::atomic<std::uint64_t>> shard_machines_done;
};

struct FleetConfig {
  /// The per-machine simulation: machines, days, seed, workload profile,
  /// detector policy, fault plan.
  core::TestbedConfig testbed;

  /// Worker threads for the sweep; 0 uses util::configured_thread_count()
  /// (the FGCS_THREADS environment variable, else hardware concurrency).
  std::size_t threads = 0;

  /// Directory receiving per-shard v2 trace segments. Empty runs
  /// in-memory (small fleets, tests): records are kept in a TraceSet on
  /// the result instead of spilled. The directory is created if missing.
  std::string spill_dir;

  /// Machines per shard; 0 derives a partition capped at kMaxShards
  /// shards. Must not depend on `threads` — the partition (and hence the
  /// segment files) is deterministic in the config alone.
  std::uint32_t shard_machines = 0;

  /// When non-empty, each shard also collects sim-time-binned series
  /// (obs::TimeSeriesShard) and the sweep writes one FGCSMET1 segment
  /// here: fleet totals first (unlabeled), then every shard's series
  /// under a {shard=NNNN} label plus fleet.shard_first_machine /
  /// fleet.shard_machines meta gauges. Byte-identical across same-seed
  /// runs for any thread count.
  std::string metrics_path;

  /// Bin width of the time-series collection (must be positive when
  /// metrics_path is set).
  sim::SimDuration metrics_resolution = sim::SimDuration::hours(1);

  /// Optional live progress sink. When non-null it must outlive
  /// run_fleet() and have been constructed with at least the sweep's
  /// shard count (see shard_count()).
  FleetProgress* progress = nullptr;

  /// Spill mode only: commit a durable checkpoint (segment CRC + state
  /// blob + MANIFEST line, see fgcs::recover) as each shard completes.
  /// Costs one small fsynced file and a manifest rewrite per shard.
  bool checkpoint = true;

  /// Validate spill_dir's checkpoint and skip every shard that proves
  /// complete; invalid or missing checkpoints run again. Requires
  /// spill_dir. A checkpoint from a different config (fingerprint
  /// mismatch) is an error, not a silent re-run.
  bool resume = false;

  /// Per-machine failure budget: when a machine has failed this many
  /// shard attempts it is quarantined (skipped, reported, flight-recorder
  /// dumped) instead of failing the sweep. Must be >= 1.
  int max_shard_retries = 2;

  /// Test seam: invoked before each machine's simulation with the
  /// machine id and the shard's attempt number (1-based). Throwing
  /// simulates a machine failure; the supervisor treats it exactly like
  /// a simulation fault. Must be thread-safe. Not part of determinism —
  /// production runs leave it empty.
  std::function<void(trace::MachineId, int)> machine_hook;

  void validate() const;

  /// The number of shards the partition produces.
  std::size_t shard_count() const;

  /// The effective machines-per-shard value (resolves the 0 default).
  std::uint32_t effective_shard_machines() const;
};

/// One shard's completed work.
struct ShardSummary {
  std::uint32_t first_machine = 0;
  std::uint32_t machine_count = 0;
  std::uint64_t records = 0;
  /// The shard's v2 segment (empty in in-memory mode).
  std::string segment_path;
  /// The shard's merged obs counters (also folded into the installed
  /// Observer, when any).
  obs::CounterShard counters;
  /// Attempts the supervisor had to discard before this shard succeeded.
  std::uint32_t retries = 0;
  /// Machines excluded from this shard after exhausting the retry budget
  /// (their records are absent from the segment).
  std::vector<trace::MachineId> quarantined;
  /// True when the shard was spliced from a validated checkpoint instead
  /// of simulated.
  bool resumed = false;
};

struct FleetResult {
  std::uint32_t machines = 0;
  int days = 0;
  sim::SimTime horizon_start;
  sim::SimTime horizon_end;
  std::uint64_t total_records = 0;
  bool spilled = false;
  std::vector<ShardSummary> shards;

  /// The FGCSMET1 segment written when FleetConfig::metrics_path was set
  /// (empty otherwise).
  std::string metrics_path;

  /// Shards restored from the checkpoint rather than simulated.
  std::size_t resumed_shards = 0;
  /// Attempts discarded across all shards (sum of ShardSummary::retries).
  std::uint64_t total_retries = 0;
  /// Every quarantined machine, fleet-wide, ascending.
  std::vector<trace::MachineId> quarantined;
  /// Human-readable reasons checkpointed shards were re-run (resume only).
  std::vector<std::string> resume_dropped;

  /// In-memory mode only (spilled == false).
  std::optional<trace::TraceSet> trace;

  std::uint64_t machine_days() const {
    return static_cast<std::uint64_t>(machines) *
           static_cast<std::uint64_t>(days);
  }

  /// Segment paths in shard (= machine) order; empty in in-memory mode.
  std::vector<std::string> segment_paths() const;

  /// Materializes the full fleet trace: returns the in-memory TraceSet,
  /// or streams every spilled segment (in shard order, so insertion is
  /// canonical and records() never re-sorts) into one. Spilled segments
  /// must still exist on disk.
  trace::TraceSet load_trace() const;
};

/// Runs the sharded fleet sweep. Deterministic in the config for any
/// thread count; bit-identical to core::run_testbed() on the same
/// testbed config.
FleetResult run_fleet(const FleetConfig& config);

}  // namespace fgcs::fleet

// The paper's five-state availability model (Figure 5).
//
//   S1  full resource availability for the guest process
//   S2  availability with the guest at lowest priority (renice 19)
//   S3  CPU unavailability (UEC: host CPU load steadily above Th2)
//   S4  memory thrashing (UEC: guest working set does not fit free memory)
//   S5  machine unavailability (URR: revocation or hardware/software failure)
//
// S3, S4, S5 are unrecoverable *for the running guest* — the guest is
// killed or migrated. The machine itself recovers and a new availability
// interval begins when the triggering condition clears.
#pragma once

#include <cstdint>

namespace fgcs::monitor {

enum class AvailabilityState : std::uint8_t {
  kS1FullAvailability = 1,
  kS2LowestPriority = 2,
  kS3CpuUnavailable = 3,
  kS4MemoryThrashing = 4,
  kS5MachineUnavailable = 5,
};

/// Short state name, "S1".."S5".
const char* to_string(AvailabilityState s);

/// Long human-readable description (Figure 5's legend).
const char* describe(AvailabilityState s);

/// True for the unrecoverable failure states S3, S4, S5.
bool is_failure(AvailabilityState s);

/// True for the UEC states S3 and S4 (unavailability due to excessive
/// resource contention, as opposed to URR / S5).
bool is_uec(AvailabilityState s);

/// Parses "S1".."S5"; throws ConfigError on anything else.
AvailabilityState availability_state_from_string(const char* s);

}  // namespace fgcs::monitor

// Threshold policy: the calibrated constants driving detection (§3, §4).
#pragma once

#include "fgcs/sim/time.hpp"

namespace fgcs::monitor {

struct ThresholdPolicy {
  /// Host CPU load above which the guest must run at lowest priority
  /// (the paper's Th1; 20% on the Linux testbed).
  double th1 = 0.20;

  /// Host CPU load above which even a nice-19 guest slows hosts by more
  /// than the limit (the paper's Th2; 60% on the Linux testbed).
  double th2 = 0.60;

  /// The "noticeable slowdown" bound for host processes (§3.2: 5%).
  double slowdown_limit = 0.05;

  /// How long host load must stay above Th2 before declaring S3. Shorter
  /// excursions only suspend the guest (§4: 1 minute).
  sim::SimDuration sustain_window = sim::SimDuration::minutes(1);

  /// Reference guest working-set size for the S4 check: S4 when free host
  /// memory cannot fit this (§4: "no enough free memory to fit the
  /// working set of a guest process").
  double guest_working_set_mb = 200.0;

  /// Monitor sampling period (vmstat/prstat polling cadence).
  sim::SimDuration sample_period = sim::SimDuration::seconds(15);

  /// §5.2's recommendation: wait ~5 minutes before re-harvesting a machine
  /// recently released from heavy load. Used by the job-manager example
  /// and the interval analyzer's small-gap accounting.
  sim::SimDuration harvest_delay = sim::SimDuration::minutes(5);

  void validate() const;

  /// The paper's Linux testbed thresholds (Th1=20%, Th2=60%).
  static ThresholdPolicy linux_testbed();
};

}  // namespace fgcs::monitor

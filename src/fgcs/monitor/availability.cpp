#include "fgcs/monitor/availability.hpp"

#include <cstring>
#include <string>

#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

const char* to_string(AvailabilityState s) {
  switch (s) {
    case AvailabilityState::kS1FullAvailability:
      return "S1";
    case AvailabilityState::kS2LowestPriority:
      return "S2";
    case AvailabilityState::kS3CpuUnavailable:
      return "S3";
    case AvailabilityState::kS4MemoryThrashing:
      return "S4";
    case AvailabilityState::kS5MachineUnavailable:
      return "S5";
  }
  return "?";
}

const char* describe(AvailabilityState s) {
  switch (s) {
    case AvailabilityState::kS1FullAvailability:
      return "full resource availability for guest process";
    case AvailabilityState::kS2LowestPriority:
      return "resource availability for guest process with lowest priority";
    case AvailabilityState::kS3CpuUnavailable:
      return "CPU unavailability (UEC)";
    case AvailabilityState::kS4MemoryThrashing:
      return "memory thrashing (UEC)";
    case AvailabilityState::kS5MachineUnavailable:
      return "machine unavailability (URR)";
  }
  return "?";
}

bool is_failure(AvailabilityState s) {
  return s == AvailabilityState::kS3CpuUnavailable ||
         s == AvailabilityState::kS4MemoryThrashing ||
         s == AvailabilityState::kS5MachineUnavailable;
}

bool is_uec(AvailabilityState s) {
  return s == AvailabilityState::kS3CpuUnavailable ||
         s == AvailabilityState::kS4MemoryThrashing;
}

AvailabilityState availability_state_from_string(const char* s) {
  if (std::strcmp(s, "S1") == 0) return AvailabilityState::kS1FullAvailability;
  if (std::strcmp(s, "S2") == 0) return AvailabilityState::kS2LowestPriority;
  if (std::strcmp(s, "S3") == 0) return AvailabilityState::kS3CpuUnavailable;
  if (std::strcmp(s, "S4") == 0) return AvailabilityState::kS4MemoryThrashing;
  if (std::strcmp(s, "S5") == 0)
    return AvailabilityState::kS5MachineUnavailable;
  throw ConfigError("unknown availability state: " + std::string(s));
}

}  // namespace fgcs::monitor

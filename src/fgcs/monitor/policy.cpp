#include "fgcs/monitor/policy.hpp"

#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

void ThresholdPolicy::validate() const {
  fgcs::require(th1 > 0.0 && th1 < 1.0, "Th1 must be in (0, 1)");
  fgcs::require(th2 > th1 && th2 <= 1.0, "Th2 must be in (Th1, 1]");
  fgcs::require(slowdown_limit > 0.0 && slowdown_limit < 1.0,
                "slowdown_limit must be in (0, 1)");
  fgcs::require(sustain_window >= sim::SimDuration::zero(),
                "sustain_window must be >= 0");
  fgcs::require(guest_working_set_mb >= 0.0,
                "guest_working_set_mb must be >= 0");
  fgcs::require(sample_period > sim::SimDuration::zero(),
                "sample_period must be > 0");
}

ThresholdPolicy ThresholdPolicy::linux_testbed() {
  ThresholdPolicy p;
  p.th1 = 0.20;
  p.th2 = 0.60;
  return p;
}

}  // namespace fgcs::monitor

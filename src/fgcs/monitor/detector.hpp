// Non-intrusive unavailability detection (§3, §4).
//
// The detector consumes periodic host-resource samples — exactly what the
// iShare monitor obtained from vmstat/prstat — and runs the five-state
// model:
//
//   * service not alive                      -> S5 (URR)
//   * free memory < guest working set        -> S4 (immediate)
//   * host CPU > Th2 sustained >= 1 minute   -> S3 (the guest is only
//     suspended during the first minute; short spikes are common, §4)
//   * Th1 <= host CPU <= Th2                 -> S2 (guest reniced)
//   * host CPU < Th1                         -> S1
//
// Each entry into S3/S4/S5 is one *unavailability occurrence*; the episode
// ends when the condition clears, and the next availability interval
// begins there.
#pragma once

#include <cstdint>
#include <span>

#include "fgcs/monitor/availability.hpp"
#include "fgcs/monitor/policy.hpp"
#include "fgcs/sim/time.hpp"
#include "fgcs/util/arena.hpp"

namespace fgcs::obs {
class TimeSeriesShard;
}  // namespace fgcs::obs

namespace fgcs::monitor {

/// One observation of host-side resources (what the monitor can see
/// without special privileges).
struct HostSample {
  sim::SimTime time;
  /// Aggregate CPU usage of all host (and system) processes, in [0, 1].
  double host_cpu = 0.0;
  /// Free physical memory available to a guest, MB.
  double free_mem_mb = 0.0;
  /// FGCS service liveness; false means the machine is revoked/down.
  bool service_alive = true;
};

/// A state-machine transition, recorded at sample granularity.
struct Transition {
  sim::SimTime time;
  AvailabilityState from;
  AvailabilityState to;
};

/// A period with no sensor data (sampler dropout, monitor restart). The
/// detector holds `held` across it rather than fabricating fresh S1.
struct SensorGap {
  sim::SimTime start;
  sim::SimTime end;
  AvailabilityState held;

  sim::SimDuration duration() const { return end - start; }
};

/// One unavailability episode (occurrence + duration + cause).
struct UnavailabilityEpisode {
  sim::SimTime start;
  sim::SimTime end;  // == start while still open
  AvailabilityState cause;
  /// Host CPU load and free memory observed when the episode began
  /// (the trace's "available CPU and memory for guest jobs", §5).
  double host_cpu_at_start = 0.0;
  double free_mem_at_start = 0.0;
  bool open = true;

  sim::SimDuration duration() const { return end - start; }
};

class UnavailabilityDetector {
 public:
  /// With a non-null `arena`, the transition/episode/gap records draw
  /// from it instead of the heap (the span accessors are unchanged) —
  /// the fleet engine hands each machine's detector its shard arena so
  /// a warmed-up machine-day allocates nothing.
  explicit UnavailabilityDetector(ThresholdPolicy policy,
                                  util::Arena* arena = nullptr);

  /// Processes one sample (times must be non-decreasing) and returns the
  /// state after it. Out-of-range CPU/memory readings are clamped (real
  /// vmstat output can momentarily exceed bounds); NaNs are rejected.
  AvailabilityState observe(HostSample sample);

  /// Batched observe(): processes `count` samples at t0, t0+stride, ...,
  /// all sharing one (cpu, mem, alive) reading — the fast path for
  /// piecewise-constant load trajectories, where a run of thousands of
  /// identical samples produces at most two transitions (an intermediate
  /// S1/S2 hold and the sustain-window S3 crossing). State, transitions,
  /// episodes, telemetry counts, and bins are bit-identical to `count`
  /// scalar observe() calls.
  AvailabilityState observe_run(sim::SimTime t0, sim::SimDuration stride,
                                std::uint64_t count, double host_cpu,
                                double free_mem_mb, bool service_alive);

  /// Current model state.
  AvailabilityState state() const { return state_; }

  /// True while host CPU is above Th2 but the sustain window has not
  /// elapsed — the guest should be *suspended*, not killed (§4).
  bool transient_high() const { return high_since_valid_ && !is_failure(state_); }

  /// Declares that no samples arrived over [start, end): the model holds
  /// its current state across the gap (the last observation remains the
  /// best evidence — a silent sensor is not an idle machine), and any
  /// in-progress sustained-high-CPU evidence is discarded, since the gap
  /// interrupts it. `start` must be >= the last sample time; subsequent
  /// samples must not precede `end`.
  void record_gap(sim::SimTime start, sim::SimTime end);

  /// Closes any open episode at `end` (end-of-trace bookkeeping).
  void finish(sim::SimTime end);

  std::span<const Transition> transitions() const { return transitions_; }
  std::span<const UnavailabilityEpisode> episodes() const { return episodes_; }
  std::span<const SensorGap> gaps() const { return gaps_; }

  const ThresholdPolicy& policy() const { return policy_; }

 private:
  void enter(AvailabilityState next, sim::SimTime when,
             const HostSample& sample);

  ThresholdPolicy policy_;
  /// Sample-telemetry sink, resolved from the ambient time-series scope
  /// once at construction: observe() runs once per simulated sample
  /// period, so the per-sample telemetry cost must stay at a member load
  /// plus one bin bump rather than two thread-local/global lookups. A
  /// scope installed after construction is not picked up.
  obs::TimeSeriesShard* ts_sink_ = nullptr;
  AvailabilityState state_ = AvailabilityState::kS1FullAvailability;
  bool saw_sample_ = false;
  sim::SimTime last_time_ = sim::SimTime::epoch();

  // Sustained-high-CPU tracking.
  bool high_since_valid_ = false;
  sim::SimTime high_since_ = sim::SimTime::epoch();

  util::ArenaVector<Transition> transitions_;
  util::ArenaVector<UnavailabilityEpisode> episodes_;
  util::ArenaVector<SensorGap> gaps_;
};

}  // namespace fgcs::monitor

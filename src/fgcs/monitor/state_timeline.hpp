// State timeline: the empirical view of the five-state model (Figure 5).
//
// The detector logs transitions; StateTimeline reconstructs the full
// piecewise-constant state history and answers occupancy questions: how
// much time a machine spends in each state, how often each transition
// fires, and how long sojourns in each state last. This is the measured
// counterpart of the paper's Figure 5 diagram.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fgcs/monitor/detector.hpp"

namespace fgcs::monitor {

/// One maximal period spent in a single state.
struct StateInterval {
  AvailabilityState state;
  sim::SimTime start;
  sim::SimTime end;

  sim::SimDuration duration() const { return end - start; }
};

class StateTimeline {
 public:
  StateTimeline() = default;

  /// Reconstructs the timeline over [start, end) from a detector's
  /// transition log. `initial` is the state at `start` (S1 for a fresh
  /// detector). Transitions outside [start, end) are rejected.
  static StateTimeline from_transitions(AvailabilityState initial,
                                        sim::SimTime start, sim::SimTime end,
                                        std::span<const Transition> transitions);

  /// Convenience: reads everything from a finished detector, including
  /// its sensor-gap log (see coverage()).
  static StateTimeline from_detector(const UnavailabilityDetector& detector,
                                     sim::SimTime start, sim::SimTime end);

  /// Declares [gap_start, gap_end) as sensor-uncovered (clipped to the
  /// horizon). The interval structure is unchanged — the held state spans
  /// the gap — only the coverage accounting moves.
  void add_sensor_gap(sim::SimTime gap_start, sim::SimTime gap_end);

  std::span<const StateInterval> intervals() const { return intervals_; }
  sim::SimTime start() const { return start_; }
  sim::SimTime end() const { return end_; }

  /// Total time spent in `s`.
  sim::SimDuration time_in(AvailabilityState s) const;

  /// time_in(s) / (end - start).
  double fraction_in(AvailabilityState s) const;

  /// Fraction of time the machine was usable by a guest (S1 or S2).
  double availability() const;

  /// Total time inside recorded sensor gaps (state held, not observed).
  sim::SimDuration sensor_gap_time() const { return gap_time_; }

  /// Fraction of the horizon backed by actual sensor data: 1.0 with no
  /// gaps, lower when dropouts forced hold-last-state.
  double coverage() const;

  /// Number of transitions from `from` to `to`.
  std::uint32_t transition_count(AvailabilityState from,
                                 AvailabilityState to) const;

  /// Total transitions out of `from`.
  std::uint32_t transitions_from(AvailabilityState from) const;

  /// Sojourn durations (hours) of every completed stay in `s`.
  std::vector<double> sojourn_hours(AvailabilityState s) const;

  /// Merges another machine's timeline statistics into this one (for
  /// testbed-wide aggregates). Timelines keep their own intervals; only
  /// counters and durations accumulate.
  void accumulate(const StateTimeline& other);

 private:
  static std::size_t idx(AvailabilityState s) {
    return static_cast<std::size_t>(s) - 1;
  }

  sim::SimTime start_;
  sim::SimTime end_;
  std::vector<StateInterval> intervals_;
  std::array<sim::SimDuration, 5> time_in_{};
  std::array<std::array<std::uint32_t, 5>, 5> transitions_{};
  sim::SimDuration total_ = sim::SimDuration::zero();
  sim::SimDuration gap_time_ = sim::SimDuration::zero();
};

}  // namespace fgcs::monitor

// Guest-process management policy (§3.2).
//
// "The priority of a running guest process is minimized (using renice)
//  whenever it causes noticeable slowdown on the host processes. If this
//  does not alleviate the resource contention, the reniced guest process
//  is suspended. The guest process resumes if the contention diminishes
//  after a certain duration (1 minute in our experiments), otherwise it
//  is terminated."
//
// GuestController translates detector states into renice / suspend /
// resume / terminate actions on a simulated machine's guest process.
#pragma once

#include <vector>

#include "fgcs/monitor/detector.hpp"
#include "fgcs/os/machine.hpp"

namespace fgcs::monitor {

enum class GuestAction : std::uint8_t {
  kSetDefaultPriority,
  kSetLowestPriority,
  kSuspend,
  kResume,
  kTerminate,
};

const char* to_string(GuestAction a);

struct GuestActionRecord {
  sim::SimTime time;
  GuestAction action;
  AvailabilityState state;
};

class GuestController {
 public:
  /// Manages `guest` on `machine`. `default_nice` is the guest's S1
  /// priority (0 in the paper's experiments).
  GuestController(os::Machine& machine, os::ProcessId guest,
                  int default_nice = 0);

  /// Applies the policy for the detector's current state. Call after each
  /// detector.observe().
  void apply(const UnavailabilityDetector& detector);

  bool terminated() const { return terminated_; }
  bool suspended() const { return suspended_; }

  const std::vector<GuestActionRecord>& actions() const { return actions_; }

 private:
  void record(GuestAction a, AvailabilityState s);

  os::Machine& machine_;
  os::ProcessId guest_;
  int default_nice_;
  bool suspended_ = false;
  bool terminated_ = false;
  int current_nice_;
  std::vector<GuestActionRecord> actions_;
};

}  // namespace fgcs::monitor

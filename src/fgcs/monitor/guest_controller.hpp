// Guest-process management policy (§3.2).
//
// "The priority of a running guest process is minimized (using renice)
//  whenever it causes noticeable slowdown on the host processes. If this
//  does not alleviate the resource contention, the reniced guest process
//  is suspended. The guest process resumes if the contention diminishes
//  after a certain duration (1 minute in our experiments), otherwise it
//  is terminated."
//
// GuestController translates detector states into renice / suspend /
// resume / terminate actions on a simulated machine's guest process. It
// also survives the guest vanishing underneath it — an injected kill or
// machine revocation terminates the process outside the controller's
// control; the next apply() observes the exit and records a terminal
// kObservedKilled action instead of touching the dead pid. With a
// CheckpointPolicy the controller additionally saves guest progress at a
// fixed cadence, so lost work on a kill is bounded by one interval.
#pragma once

#include <vector>

#include "fgcs/monitor/detector.hpp"
#include "fgcs/os/machine.hpp"

namespace fgcs::monitor {

enum class GuestAction : std::uint8_t {
  kSetDefaultPriority,
  kSetLowestPriority,
  kSuspend,
  kResume,
  kTerminate,
  /// Progress saved (periodic checkpoint; see CheckpointPolicy).
  kCheckpoint,
  /// Terminal: the guest was found already killed by an external actor
  /// (injected fault, revocation) — recorded so the kill is
  /// distinguishable from natural completion.
  kObservedKilled,
};

const char* to_string(GuestAction a);

struct GuestActionRecord {
  sim::SimTime time;
  GuestAction action;
  AvailabilityState state;
};

/// Periodic checkpointing of the guest's progress. `interval` is wall
/// cadence between checkpoint attempts (zero disables checkpointing);
/// `cost` is the CPU-work equivalent spent writing one checkpoint — it is
/// deducted from the saved progress, so checkpointing too often saves
/// less than it costs.
struct CheckpointPolicy {
  sim::SimDuration interval = sim::SimDuration::zero();
  sim::SimDuration cost = sim::SimDuration::zero();

  bool enabled() const { return interval > sim::SimDuration::zero(); }
  void validate() const;
};

class GuestController {
 public:
  /// Manages `guest` on `machine`. `default_nice` is the guest's S1
  /// priority (0 in the paper's experiments).
  GuestController(os::Machine& machine, os::ProcessId guest,
                  int default_nice = 0, CheckpointPolicy checkpoint = {});

  /// Applies the policy for the detector's current state. Call after each
  /// detector.observe(). Safe to call after the guest exited or was
  /// killed externally: the controller records the observation and goes
  /// terminal instead of operating on the dead process.
  void apply(const UnavailabilityDetector& detector);

  bool terminated() const { return terminated_; }
  bool suspended() const { return suspended_; }

  /// Guest CPU progress covered by the last checkpoint (zero when
  /// checkpointing is disabled or none was taken yet).
  sim::SimDuration checkpointed_progress() const { return checkpointed_; }

  /// CPU work that would be lost if the guest died now (progress since
  /// the last checkpoint); after a kill, the work actually lost.
  sim::SimDuration unsaved_progress() const;

  std::uint32_t checkpoint_count() const { return checkpoint_count_; }

  const std::vector<GuestActionRecord>& actions() const { return actions_; }

 private:
  void record(GuestAction a, AvailabilityState s);
  void maybe_checkpoint(AvailabilityState s);

  os::Machine& machine_;
  os::ProcessId guest_;
  int default_nice_;
  CheckpointPolicy checkpoint_;
  bool suspended_ = false;
  bool terminated_ = false;
  int current_nice_;
  sim::SimTime last_checkpoint_;
  sim::SimDuration checkpointed_ = sim::SimDuration::zero();
  sim::SimDuration lost_at_exit_ = sim::SimDuration::zero();
  bool observed_exit_ = false;
  std::uint32_t checkpoint_count_ = 0;
  std::vector<GuestActionRecord> actions_;
};

}  // namespace fgcs::monitor

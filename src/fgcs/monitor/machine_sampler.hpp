// Sampler adapters: produce HostSamples from resource sources.
//
// MachineSampler polls a fine-grained os::Machine the way the iShare
// monitor polled vmstat/prstat: host CPU usage over the last period
// (host + system processes), current free memory, service alive.
#pragma once

#include "fgcs/monitor/detector.hpp"
#include "fgcs/os/machine.hpp"
#include "fgcs/workload/load_model.hpp"

namespace fgcs::monitor {

/// Polls an os::Machine. Advance the machine externally, then call
/// sample() at each period boundary.
class MachineSampler {
 public:
  explicit MachineSampler(const os::Machine& machine);

  /// Produces the sample for the window [last-call, now]. The first call
  /// covers [construction, now].
  HostSample sample();

 private:
  const os::Machine& machine_;
  os::CpuTotals last_totals_;
};

/// Samples a synthesized load trajectory (testbed tier). Host CPU over a
/// window is the time-average of the piecewise-constant trajectory;
/// free memory derives from total RAM minus kernel and host usage;
/// downtimes turn service_alive off.
class TrajectorySampler {
 public:
  TrajectorySampler(const workload::MachineLoadTrace& trace, double ram_mb,
                    double kernel_mb);

  /// Sample at time `t` covering the window [t - period, t]; `t` must be
  /// non-decreasing across calls.
  HostSample sample(sim::SimTime t, sim::SimDuration period);

 private:
  bool in_downtime(sim::SimTime t);

  const workload::MachineLoadTrace& trace_;
  double ram_mb_;
  double kernel_mb_;
  workload::LoadTrajectory::Cursor cursor_;
  std::size_t downtime_index_ = 0;
};

}  // namespace fgcs::monitor

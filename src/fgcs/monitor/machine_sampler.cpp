#include "fgcs/monitor/machine_sampler.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

MachineSampler::MachineSampler(const os::Machine& machine)
    : machine_(machine), last_totals_(machine.totals()) {}

HostSample MachineSampler::sample() {
  const os::CpuTotals now_totals = machine_.totals();
  HostSample s;
  s.time = machine_.now();
  s.host_cpu = os::CpuTotals::host_usage(last_totals_, now_totals);
  s.free_mem_mb = machine_.free_memory_mb();
  s.service_alive = true;
  last_totals_ = now_totals;
  return s;
}

TrajectorySampler::TrajectorySampler(const workload::MachineLoadTrace& trace,
                                     double ram_mb, double kernel_mb)
    : trace_(trace), ram_mb_(ram_mb), kernel_mb_(kernel_mb),
      cursor_(trace.load) {
  fgcs::require(ram_mb > kernel_mb && kernel_mb >= 0,
                "TrajectorySampler: invalid memory sizes");
}

bool TrajectorySampler::in_downtime(sim::SimTime t) {
  const auto& downs = trace_.downtimes;
  while (downtime_index_ < downs.size() &&
         downs[downtime_index_].start + downs[downtime_index_].duration <= t) {
    ++downtime_index_;
  }
  return downtime_index_ < downs.size() && downs[downtime_index_].start <= t;
}

HostSample TrajectorySampler::sample(sim::SimTime t, sim::SimDuration period) {
  FGCS_ASSERT(period > sim::SimDuration::zero());
  HostSample s;
  s.time = t;
  s.service_alive = !in_downtime(t);
  // Trajectories are piecewise-constant with segments much longer than the
  // sampling period, so the instantaneous value stands in for the window
  // average (the cursor is still advanced monotonically).
  const workload::LoadPoint& p = cursor_.at(t);
  s.host_cpu = p.cpu;
  const double host_mem = p.mem_mb;
  s.free_mem_mb = std::max(0.0, ram_mb_ - kernel_mb_ - host_mem);
  return s;
}

}  // namespace fgcs::monitor

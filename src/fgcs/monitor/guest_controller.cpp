#include "fgcs/monitor/guest_controller.hpp"

#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

const char* to_string(GuestAction a) {
  switch (a) {
    case GuestAction::kSetDefaultPriority:
      return "set-default-priority";
    case GuestAction::kSetLowestPriority:
      return "renice-19";
    case GuestAction::kSuspend:
      return "suspend";
    case GuestAction::kResume:
      return "resume";
    case GuestAction::kTerminate:
      return "terminate";
  }
  return "?";
}

GuestController::GuestController(os::Machine& machine, os::ProcessId guest,
                                 int default_nice)
    : machine_(machine),
      guest_(guest),
      default_nice_(default_nice),
      current_nice_(machine.process(guest).nice()) {
  fgcs::require(default_nice >= 0 && default_nice <= 19,
                "default_nice must be in [0, 19]");
}

void GuestController::record(GuestAction a, AvailabilityState s) {
  actions_.push_back({machine_.now(), a, s});
}

void GuestController::apply(const UnavailabilityDetector& detector) {
  if (terminated_) return;
  if (machine_.process(guest_).state() == os::ProcState::kExited) {
    terminated_ = true;
    return;
  }

  const AvailabilityState s = detector.state();
  if (is_failure(s)) {
    machine_.terminate(guest_);
    terminated_ = true;
    record(GuestAction::kTerminate, s);
    return;
  }

  if (detector.transient_high()) {
    if (!suspended_) {
      machine_.suspend(guest_);
      suspended_ = true;
      record(GuestAction::kSuspend, s);
    }
    return;
  }

  if (suspended_) {
    machine_.resume(guest_);
    suspended_ = false;
    record(GuestAction::kResume, s);
  }

  const int want_nice =
      s == AvailabilityState::kS2LowestPriority ? 19 : default_nice_;
  if (want_nice != current_nice_) {
    machine_.renice(guest_, want_nice);
    current_nice_ = want_nice;
    record(want_nice == 19 ? GuestAction::kSetLowestPriority
                           : GuestAction::kSetDefaultPriority,
           s);
  }
}

}  // namespace fgcs::monitor

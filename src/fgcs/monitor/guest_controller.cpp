#include "fgcs/monitor/guest_controller.hpp"

#include <algorithm>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

const char* to_string(GuestAction a) {
  switch (a) {
    case GuestAction::kSetDefaultPriority:
      return "set-default-priority";
    case GuestAction::kSetLowestPriority:
      return "renice-19";
    case GuestAction::kSuspend:
      return "suspend";
    case GuestAction::kResume:
      return "resume";
    case GuestAction::kTerminate:
      return "terminate";
    case GuestAction::kCheckpoint:
      return "checkpoint";
    case GuestAction::kObservedKilled:
      return "observed-killed";
  }
  return "?";
}

void CheckpointPolicy::validate() const {
  fgcs::require(interval >= sim::SimDuration::zero(),
                "checkpoint interval must be >= 0");
  fgcs::require(cost >= sim::SimDuration::zero(),
                "checkpoint cost must be >= 0");
  if (enabled()) {
    fgcs::require(cost < interval,
                  "checkpoint cost must be < interval (else nothing is saved)");
  }
}

GuestController::GuestController(os::Machine& machine, os::ProcessId guest,
                                 int default_nice, CheckpointPolicy checkpoint)
    : machine_(machine),
      guest_(guest),
      default_nice_(default_nice),
      checkpoint_(checkpoint),
      current_nice_(machine.process(guest).nice()),
      last_checkpoint_(machine.now()) {
  fgcs::require(default_nice >= 0 && default_nice <= 19,
                "default_nice must be in [0, 19]");
  checkpoint_.validate();
}

void GuestController::record(GuestAction a, AvailabilityState s) {
  actions_.push_back({machine_.now(), a, s});
}

sim::SimDuration GuestController::unsaved_progress() const {
  if (observed_exit_) return lost_at_exit_;
  const sim::SimDuration progress = machine_.process(guest_).cpu_time();
  return progress > checkpointed_ ? progress - checkpointed_
                                  : sim::SimDuration::zero();
}

void GuestController::maybe_checkpoint(AvailabilityState s) {
  if (!checkpoint_.enabled()) return;
  const sim::SimTime now = machine_.now();
  if (now - last_checkpoint_ < checkpoint_.interval) return;
  // Writing the checkpoint consumes `cost` of work-equivalent: the saved
  // progress excludes it, and progress never moves backwards.
  const sim::SimDuration progress = machine_.process(guest_).cpu_time();
  sim::SimDuration saved = progress > checkpoint_.cost
                               ? progress - checkpoint_.cost
                               : sim::SimDuration::zero();
  last_checkpoint_ = now;
  if (saved <= checkpointed_) return;  // nothing new worth saving
  checkpointed_ = saved;
  ++checkpoint_count_;
  record(GuestAction::kCheckpoint, s);
  if (auto* o = obs::observer()) o->on_guest_checkpoint(now);
}

void GuestController::apply(const UnavailabilityDetector& detector) {
  if (terminated_) return;
  const os::Process& guest = machine_.process(guest_);
  if (guest.state() == os::ProcState::kExited) {
    // The guest vanished outside our control: natural completion, or an
    // external kill (injected fault / revocation). Record the latter as a
    // terminal action so it is distinguishable from completion, and
    // account the work lost since the last checkpoint.
    terminated_ = true;
    observed_exit_ = true;
    const sim::SimDuration progress = guest.cpu_time();
    lost_at_exit_ = guest.killed() && progress > checkpointed_
                        ? progress - checkpointed_
                        : sim::SimDuration::zero();
    if (guest.killed()) {
      record(GuestAction::kObservedKilled, detector.state());
      if (auto* o = obs::observer()) {
        o->on_guest_work_lost(machine_.now(), lost_at_exit_);
      }
    }
    return;
  }

  const AvailabilityState s = detector.state();
  if (is_failure(s)) {
    const sim::SimDuration progress = guest.cpu_time();
    machine_.terminate(guest_);
    terminated_ = true;
    observed_exit_ = true;
    lost_at_exit_ = progress > checkpointed_ ? progress - checkpointed_
                                             : sim::SimDuration::zero();
    record(GuestAction::kTerminate, s);
    if (auto* o = obs::observer()) {
      o->on_guest_work_lost(machine_.now(), lost_at_exit_);
    }
    return;
  }

  if (detector.transient_high()) {
    if (!suspended_) {
      machine_.suspend(guest_);
      suspended_ = true;
      record(GuestAction::kSuspend, s);
    }
    return;
  }

  if (suspended_) {
    machine_.resume(guest_);
    suspended_ = false;
    record(GuestAction::kResume, s);
  }

  maybe_checkpoint(s);

  const int want_nice =
      s == AvailabilityState::kS2LowestPriority ? 19 : default_nice_;
  if (want_nice != current_nice_) {
    machine_.renice(guest_, want_nice);
    current_nice_ = want_nice;
    record(want_nice == 19 ? GuestAction::kSetLowestPriority
                           : GuestAction::kSetDefaultPriority,
           s);
  }
}

}  // namespace fgcs::monitor

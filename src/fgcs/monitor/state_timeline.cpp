#include "fgcs/monitor/state_timeline.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

StateTimeline StateTimeline::from_transitions(
    AvailabilityState initial, sim::SimTime start, sim::SimTime end,
    std::span<const Transition> transitions) {
  fgcs::require(end > start, "StateTimeline: empty horizon");
  StateTimeline tl;
  tl.start_ = start;
  tl.end_ = end;
  tl.total_ = end - start;

  AvailabilityState current = initial;
  sim::SimTime cursor = start;
  for (const auto& t : transitions) {
    fgcs::require(t.time >= cursor && t.time <= end,
                  "StateTimeline: transition outside horizon or unordered");
    fgcs::require(t.from == current,
                  "StateTimeline: transition chain mismatch");
    if (t.time > cursor) {
      tl.intervals_.push_back({current, cursor, t.time});
      tl.time_in_[idx(current)] += t.time - cursor;
    }
    ++tl.transitions_[idx(t.from)][idx(t.to)];
    current = t.to;
    cursor = t.time;
  }
  if (cursor < end) {
    tl.intervals_.push_back({current, cursor, end});
    tl.time_in_[idx(current)] += end - cursor;
  }
  return tl;
}

StateTimeline StateTimeline::from_detector(
    const UnavailabilityDetector& detector, sim::SimTime start,
    sim::SimTime end) {
  StateTimeline tl = from_transitions(AvailabilityState::kS1FullAvailability,
                                      start, end, detector.transitions());
  for (const auto& gap : detector.gaps()) {
    tl.add_sensor_gap(gap.start, gap.end);
  }
  return tl;
}

void StateTimeline::add_sensor_gap(sim::SimTime gap_start,
                                   sim::SimTime gap_end) {
  const sim::SimTime lo = std::max(gap_start, start_);
  const sim::SimTime hi = std::min(gap_end, end_);
  if (hi > lo) gap_time_ += hi - lo;
}

double StateTimeline::coverage() const {
  if (total_ <= sim::SimDuration::zero()) return 1.0;
  return 1.0 - gap_time_ / total_;
}

sim::SimDuration StateTimeline::time_in(AvailabilityState s) const {
  return time_in_[idx(s)];
}

double StateTimeline::fraction_in(AvailabilityState s) const {
  if (total_ <= sim::SimDuration::zero()) return 0.0;
  return time_in(s) / total_;
}

double StateTimeline::availability() const {
  return fraction_in(AvailabilityState::kS1FullAvailability) +
         fraction_in(AvailabilityState::kS2LowestPriority);
}

std::uint32_t StateTimeline::transition_count(AvailabilityState from,
                                              AvailabilityState to) const {
  return transitions_[idx(from)][idx(to)];
}

std::uint32_t StateTimeline::transitions_from(AvailabilityState from) const {
  std::uint32_t n = 0;
  for (std::size_t to = 0; to < 5; ++to) n += transitions_[idx(from)][to];
  return n;
}

std::vector<double> StateTimeline::sojourn_hours(AvailabilityState s) const {
  std::vector<double> out;
  for (const auto& iv : intervals_) {
    if (iv.state == s) out.push_back(iv.duration().as_hours());
  }
  return out;
}

void StateTimeline::accumulate(const StateTimeline& other) {
  for (std::size_t i = 0; i < 5; ++i) {
    time_in_[i] += other.time_in_[i];
    for (std::size_t j = 0; j < 5; ++j) {
      transitions_[i][j] += other.transitions_[i][j];
    }
  }
  total_ += other.total_;
  gap_time_ += other.gap_time_;
  // Keep intervals of both for sojourn statistics.
  intervals_.insert(intervals_.end(), other.intervals_.begin(),
                    other.intervals_.end());
}

}  // namespace fgcs::monitor

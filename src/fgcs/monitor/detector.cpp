#include "fgcs/monitor/detector.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::monitor {

UnavailabilityDetector::UnavailabilityDetector(ThresholdPolicy policy,
                                               util::Arena* arena)
    : policy_(policy),
      ts_sink_(obs::current_ts_shard()),
      transitions_(util::ArenaAllocator<Transition>(arena)),
      episodes_(util::ArenaAllocator<UnavailabilityEpisode>(arena)),
      gaps_(util::ArenaAllocator<SensorGap>(arena)) {
  policy_.validate();
}

AvailabilityState UnavailabilityDetector::observe(HostSample sample) {
  FGCS_ASSERT(!saw_sample_ || sample.time >= last_time_);
  // vmstat-style inputs can be momentarily out of range (counter skew,
  // rounding); NaNs however indicate a broken sampler.
  FGCS_ASSERT(!std::isnan(sample.host_cpu) && !std::isnan(sample.free_mem_mb));
  sample.host_cpu = std::clamp(sample.host_cpu, 0.0, 1.0);
  sample.free_mem_mb = std::max(0.0, sample.free_mem_mb);
  saw_sample_ = true;
  last_time_ = sample.time;
  // Pinned sink first: with binned collection active this is the entire
  // per-sample telemetry cost (Observer::on_detector_sample would reach
  // the same bins through a thread-local load per call).
  if (ts_sink_ != nullptr) {
    ts_sink_->on_sample(sample.time);
  } else if (auto* o = obs::observer()) {
    o->on_detector_sample(sample.time);
  }

  AvailabilityState next;
  // CPU-excursion tracking is orthogonal to the memory check (§3.2.3);
  // only machine downtime resets it.
  if (sample.service_alive) {
    if (sample.host_cpu > policy_.th2) {
      if (!high_since_valid_) {
        high_since_valid_ = true;
        high_since_ = sample.time;
      }
    } else {
      high_since_valid_ = false;
    }
  } else {
    high_since_valid_ = false;
  }

  if (!sample.service_alive) {
    next = AvailabilityState::kS5MachineUnavailable;
  } else if (sample.free_mem_mb < policy_.guest_working_set_mb) {
    // S4 is immediate: starting a guest (or keeping one) would thrash (§4).
    next = AvailabilityState::kS4MemoryThrashing;
  } else if (sample.host_cpu > policy_.th2) {
    const bool sustained =
        (sample.time - high_since_) >= policy_.sustain_window;
    if (state_ == AvailabilityState::kS3CpuUnavailable || sustained) {
      next = AvailabilityState::kS3CpuUnavailable;
    } else if (state_ == AvailabilityState::kS1FullAvailability ||
               state_ == AvailabilityState::kS2LowestPriority) {
      // Transient spike: the guest is merely suspended; the model stays in
      // S1/S2 (§4's definition of those states).
      next = state_;
    } else {
      // Recovering from a failure state straight into high load.
      next = AvailabilityState::kS2LowestPriority;
    }
  } else {
    high_since_valid_ = false;
    next = sample.host_cpu >= policy_.th1
               ? AvailabilityState::kS2LowestPriority
               : AvailabilityState::kS1FullAvailability;
  }

  if (next != state_) enter(next, sample.time, sample);
  return state_;
}

AvailabilityState UnavailabilityDetector::observe_run(
    sim::SimTime t0, sim::SimDuration stride, std::uint64_t count,
    double host_cpu, double free_mem_mb, bool service_alive) {
  if (count == 0) return state_;
  FGCS_ASSERT(!saw_sample_ || t0 >= last_time_);
  FGCS_ASSERT(stride >= sim::SimDuration::zero());
  FGCS_ASSERT(!std::isnan(host_cpu) && !std::isnan(free_mem_mb));
  host_cpu = std::clamp(host_cpu, 0.0, 1.0);
  free_mem_mb = std::max(0.0, free_mem_mb);
  saw_sample_ = true;
  last_time_ = t0 + stride * static_cast<std::int64_t>(count - 1);
  if (ts_sink_ != nullptr) {
    ts_sink_->on_samples(t0, stride, count);
  } else if (auto* o = obs::observer()) {
    o->on_detector_samples(t0, stride, count);
  }

  // The (clamped) sample enter() snapshots when it opens an episode;
  // only its time varies across the run.
  HostSample rep;
  rep.host_cpu = host_cpu;
  rep.free_mem_mb = free_mem_mb;
  rep.service_alive = service_alive;

  if (!service_alive) {
    high_since_valid_ = false;
    if (state_ != AvailabilityState::kS5MachineUnavailable) {
      rep.time = t0;
      enter(AvailabilityState::kS5MachineUnavailable, t0, rep);
    }
    return state_;
  }

  // CPU-excursion tracking runs before the memory check in the scalar
  // path; with constant inputs its end-of-run state collapses to this.
  if (host_cpu > policy_.th2) {
    if (!high_since_valid_) {
      high_since_valid_ = true;
      high_since_ = t0;
    }
  } else {
    high_since_valid_ = false;
  }

  if (free_mem_mb < policy_.guest_working_set_mb) {
    if (state_ != AvailabilityState::kS4MemoryThrashing) {
      rep.time = t0;
      enter(AvailabilityState::kS4MemoryThrashing, t0, rep);
    }
    return state_;
  }

  if (host_cpu > policy_.th2) {
    // Already failed on CPU: every sample keeps S3.
    if (state_ == AvailabilityState::kS3CpuUnavailable) return state_;
    if (t0 - high_since_ >= policy_.sustain_window) {
      rep.time = t0;
      enter(AvailabilityState::kS3CpuUnavailable, t0, rep);
      return state_;
    }
    // Pre-sustain samples hold S1/S2 (transient spike) or force S2 when
    // recovering from a failure state.
    AvailabilityState inter = state_;
    if (state_ != AvailabilityState::kS1FullAvailability &&
        state_ != AvailabilityState::kS2LowestPriority) {
      inter = AvailabilityState::kS2LowestPriority;
    }
    if (inter != state_) {
      rep.time = t0;
      enter(inter, t0, rep);
    }
    if (stride == sim::SimDuration::zero()) return state_;
    // First sample index with (t_i - high_since_) >= sustain_window;
    // need > 0 here because the first sample was not yet sustained.
    const std::int64_t need =
        (high_since_ + policy_.sustain_window - t0).as_micros();
    const std::int64_t step = stride.as_micros();
    const auto istar = static_cast<std::uint64_t>((need + step - 1) / step);
    if (istar < count) {
      const sim::SimTime ts3 =
          t0 + stride * static_cast<std::int64_t>(istar);
      rep.time = ts3;
      // enter() backdates the S3 episode to high_since_, exactly as the
      // scalar path would at this sample.
      enter(AvailabilityState::kS3CpuUnavailable, ts3, rep);
    }
    return state_;
  }

  const AvailabilityState next = host_cpu >= policy_.th1
                                     ? AvailabilityState::kS2LowestPriority
                                     : AvailabilityState::kS1FullAvailability;
  if (next != state_) {
    rep.time = t0;
    enter(next, t0, rep);
  }
  return state_;
}

void UnavailabilityDetector::enter(AvailabilityState next, sim::SimTime when,
                                   const HostSample& sample) {
  transitions_.push_back({when, state_, next});
  obs::Observer* const o = obs::observer();
  if (o != nullptr) {
    o->on_detector_transition(when, static_cast<int>(state_),
                              static_cast<int>(next));
  }

  if (is_failure(state_) && !episodes_.empty() && episodes_.back().open) {
    episodes_.back().end = when;
    episodes_.back().open = false;
    if (o != nullptr) {
      o->on_episode_closed(when, static_cast<int>(episodes_.back().cause),
                           episodes_.back().duration());
    }
  }
  if (is_failure(next)) {
    UnavailabilityEpisode ep;
    // S3 episodes begin when the load excursion began (the guest was
    // already suspended through the confirmation window) — unless we come
    // straight out of another failure episode, which owns that time. The
    // excursion may also have started *before* an intervening S4/S5
    // episode; clamp so episodes never overlap.
    ep.start = when;
    if (next == AvailabilityState::kS3CpuUnavailable && high_since_valid_ &&
        !is_failure(state_)) {
      ep.start = high_since_;
      if (!episodes_.empty()) {
        ep.start = std::max(ep.start, episodes_.back().end);
      }
    }
    ep.end = ep.start;
    ep.cause = next;
    ep.host_cpu_at_start = sample.host_cpu;
    ep.free_mem_at_start = sample.free_mem_mb;
    episodes_.push_back(ep);
    if (o != nullptr) {
      o->on_episode_opened(ep.start, static_cast<int>(ep.cause),
                           ep.host_cpu_at_start, ep.free_mem_at_start);
    }
  }
  state_ = next;
}

void UnavailabilityDetector::record_gap(sim::SimTime start, sim::SimTime end) {
  FGCS_ASSERT(end > start);
  FGCS_ASSERT(!saw_sample_ || start >= last_time_);
  // Merge back-to-back gaps (a dropout spanning several sample periods is
  // reported once per period by the sampler loop).
  if (!gaps_.empty() && gaps_.back().end == start &&
      gaps_.back().held == state_) {
    gaps_.back().end = end;
  } else {
    gaps_.push_back({start, end, state_});
  }
  // The excursion evidence is interrupted: load may have dipped below Th2
  // unobserved, so the sustain clock must restart after the gap.
  high_since_valid_ = false;
  last_time_ = end;
  saw_sample_ = true;
  if (auto* o = obs::observer()) o->on_sensor_gap(start, end - start);
}

void UnavailabilityDetector::finish(sim::SimTime end) {
  if (!episodes_.empty() && episodes_.back().open) {
    episodes_.back().end = end;
    episodes_.back().open = false;
    if (auto* o = obs::observer()) {
      o->on_episode_closed(end, static_cast<int>(episodes_.back().cause),
                           episodes_.back().duration());
    }
  }
}

}  // namespace fgcs::monitor

// Guest application models from SPEC CPU2000 (§3.2.3, Table 1).
//
// The paper uses four CPU-bound SPEC CPU2000 applications as guest jobs.
// For contention behaviour only two properties matter (the paper's own
// argument): CPU-boundness and memory footprint. Both are reproduced
// verbatim from Table 1.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "fgcs/os/process.hpp"

namespace fgcs::workload {

/// One row of Table 1 (guest section).
struct SpecApp {
  std::string_view name;
  double cpu_usage;     // isolated CPU usage (0.97..0.99)
  double resident_mb;   // resident set size == working set (§3.2.3)
  double virtual_mb;
};

/// The four guest applications of Table 1: apsi, galgel, bzip2, mcf.
std::span<const SpecApp> spec_cpu2000_apps();

/// Looks up an app by name; throws ConfigError if unknown.
const SpecApp& spec_app(std::string_view name);

/// Builds a guest ProcessSpec for the given SPEC app at the given nice.
os::ProcessSpec spec_guest(const SpecApp& app, int nice = 0);

}  // namespace fgcs::workload

#include "fgcs/workload/spec_cpu2000.hpp"

#include <array>
#include <string>

#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::workload {

namespace {
// Table 1, guest applications (CPU usage, resident size, virtual size).
constexpr std::array<SpecApp, 4> kApps{{
    {"apsi", 0.98, 193.0, 205.0},
    {"galgel", 0.99, 29.0, 155.0},
    {"bzip2", 0.97, 180.0, 182.0},
    {"mcf", 0.99, 96.0, 96.0},
}};
}  // namespace

std::span<const SpecApp> spec_cpu2000_apps() { return kApps; }

const SpecApp& spec_app(std::string_view name) {
  for (const auto& app : kApps) {
    if (app.name == name) return app;
  }
  throw ConfigError("unknown SPEC CPU2000 app: " + std::string(name));
}

os::ProcessSpec spec_guest(const SpecApp& app, int nice) {
  os::ProcessSpec spec;
  spec.name = std::string(app.name);
  spec.kind = os::ProcessKind::kGuest;
  spec.nice = nice;
  spec.resident_mb = app.resident_mb;
  spec.virtual_mb = app.virtual_mb;
  spec.working_set_mb = app.resident_mb;
  // SPEC apps are CPU-bound with brief I/O at start/end (§3.2); model the
  // steady state as a duty cycle at the measured usage with long bursts.
  SyntheticCpuSpec cycle;
  cycle.isolated_usage = app.cpu_usage;
  cycle.period = sim::SimDuration::seconds(2);
  cycle.jitter = 0.1;
  spec.program = duty_cycle_program(cycle);
  return spec;
}

}  // namespace fgcs::workload

#include "fgcs/workload/synthetic.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "fgcs/util/error.hpp"

namespace fgcs::workload {

void SyntheticCpuSpec::validate() const {
  fgcs::require(isolated_usage > 0.0 && isolated_usage <= 1.0,
                "isolated_usage must be in (0, 1]");
  fgcs::require(period > sim::SimDuration::zero(), "period must be > 0");
  fgcs::require(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
}

os::PhaseProgram duty_cycle_program(SyntheticCpuSpec spec) {
  spec.validate();
  if (spec.isolated_usage >= 0.999) {
    return os::cpu_bound_program();
  }
  // Each cycle emits a compute phase then a sleep phase. State toggles
  // between them; the jittered period is drawn once per cycle.
  auto compute_next = std::make_shared<bool>(true);
  auto cycle_period = std::make_shared<sim::SimDuration>(spec.period);
  return [spec, compute_next, cycle_period](util::RngStream& rng) -> os::Phase {
    if (*compute_next) {
      *compute_next = false;
      const double scale = 1.0 + spec.jitter * rng.uniform(-1.0, 1.0);
      *cycle_period = spec.period * scale;
      return os::Phase::compute(*cycle_period * spec.isolated_usage);
    }
    *compute_next = true;
    return os::Phase::sleep(*cycle_period * (1.0 - spec.isolated_usage));
  };
}

os::ProcessSpec synthetic_host(double isolated_usage, int nice,
                               SyntheticCpuSpec base) {
  base.isolated_usage = isolated_usage;
  os::ProcessSpec spec;
  spec.name = "synth-host-" + std::to_string(static_cast<int>(
                                  isolated_usage * 100.0 + 0.5));
  spec.kind = os::ProcessKind::kHost;
  spec.nice = nice;
  spec.resident_mb = 2.0;  // "very small resident sets" (§3.2.1)
  spec.virtual_mb = 4.0;
  spec.program = duty_cycle_program(base);
  return spec;
}

os::ProcessSpec synthetic_guest(int nice) {
  os::ProcessSpec spec;
  spec.name = "synth-guest";
  spec.kind = os::ProcessKind::kGuest;
  spec.nice = nice;
  spec.resident_mb = 2.0;
  spec.virtual_mb = 4.0;
  spec.program = os::cpu_bound_program();
  return spec;
}

os::ProcessSpec synthetic_guest_with_usage(double isolated_usage, int nice) {
  os::ProcessSpec spec = synthetic_guest(nice);
  if (isolated_usage < 0.999) {
    SyntheticCpuSpec s;
    s.isolated_usage = isolated_usage;
    spec.program = duty_cycle_program(s);
    spec.name = "synth-guest-" + std::to_string(static_cast<int>(
                                     isolated_usage * 100.0 + 0.5));
  }
  return spec;
}

std::vector<os::ProcessSpec> make_host_group(double total_usage,
                                             std::size_t m,
                                             util::RngStream& rng,
                                             double min_usage,
                                             double max_usage) {
  fgcs::require(m >= 1, "host group needs at least one process");
  fgcs::require(total_usage > 0.0 && total_usage <= 1.0,
                "total_usage must be in (0, 1]");
  fgcs::require(min_usage * static_cast<double>(m) <= total_usage,
                "min_usage * m exceeds total_usage");

  // Exponential spacings -> uniform composition on the simplex, then clamp
  // to [min_usage, max_usage] and redistribute the residual.
  std::vector<double> shares(m);
  for (int attempt = 0; attempt < 64; ++attempt) {
    double sum = 0.0;
    for (auto& s : shares) {
      s = rng.exponential(1.0);
      sum += s;
    }
    bool ok = true;
    for (auto& s : shares) {
      s = s / sum * total_usage;
      if (s < min_usage || s > max_usage) {
        ok = false;
      }
    }
    if (ok) break;
    if (attempt == 63) {
      // Fall back to an even split (always feasible given the requires).
      for (auto& s : shares) s = total_usage / static_cast<double>(m);
    }
  }

  std::vector<os::ProcessSpec> group;
  group.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    group.push_back(synthetic_host(shares[i]));
    group.back().name += "-" + std::to_string(i);
  }
  return group;
}

}  // namespace fgcs::workload

// Synthetic duty-cycle workloads (§3.2.1).
//
// The paper's CPU-contention experiments use synthetic programs with small
// resident sets whose *isolated CPU usage* (usage when run alone) is
// controlled by alternating compute bursts and sleeps, measured with
// gettimeofday/getrusage. These builders create the same programs for the
// simulated machine. Jitter decorrelates the phases of the processes in a
// host group, mimicking independent real programs.
#pragma once

#include <cstdint>
#include <vector>

#include "fgcs/os/process.hpp"
#include "fgcs/sim/time.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::workload {

/// Parameters of a duty-cycle synthetic program.
struct SyntheticCpuSpec {
  /// Target isolated CPU usage in (0, 1].
  double isolated_usage = 0.5;
  /// Nominal cycle period (compute + sleep).
  sim::SimDuration period = sim::SimDuration::millis(1500);
  /// Relative period jitter in [0, 1): each cycle's period is
  /// period * (1 + jitter * U(-1, 1)).
  double jitter = 0.25;

  void validate() const;
};

/// Phase program implementing a SyntheticCpuSpec.
os::PhaseProgram duty_cycle_program(SyntheticCpuSpec spec);

/// A host process with the given isolated usage and a tiny resident set.
os::ProcessSpec synthetic_host(double isolated_usage, int nice = 0,
                               SyntheticCpuSpec base = {});

/// The fully CPU-bound guest process used in Figures 1 and 2.
os::ProcessSpec synthetic_guest(int nice = 0);

/// A guest with a duty-cycle-limited isolated usage (Figure 3 uses
/// guests with isolated usage 0.7..1.0).
os::ProcessSpec synthetic_guest_with_usage(double isolated_usage,
                                           int nice = 0);

/// Composes a host group of `m` processes whose isolated usages sum to
/// `total_usage` (the paper's L_H), each usage in [min_usage, max_usage].
/// Compositions are random (exponential spacings, normalized), matching the
/// paper's "multiple combinations of host processes per tested L_H".
std::vector<os::ProcessSpec> make_host_group(double total_usage,
                                             std::size_t m,
                                             util::RngStream& rng,
                                             double min_usage = 0.02,
                                             double max_usage = 0.98);

}  // namespace fgcs::workload

#include "fgcs/workload/musbus.hpp"

#include <array>
#include <string>

#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::workload {

namespace {
// Table 1, host workloads created by Musbus.
constexpr std::array<MusbusWorkload, 6> kWorkloads{{
    {"H1", 0.086, 71.0, 122.0},
    {"H2", 0.092, 213.0, 247.0},
    {"H3", 0.172, 53.0, 151.0},
    {"H4", 0.219, 68.0, 122.0},
    {"H5", 0.570, 210.0, 236.0},
    {"H6", 0.662, 84.0, 113.0},
}};

os::ProcessSpec component(const MusbusWorkload& w, std::string_view role,
                          double usage_share, double mem_share,
                          sim::SimDuration period) {
  os::ProcessSpec spec;
  spec.name = std::string(w.name) + "-" + std::string(role);
  spec.kind = os::ProcessKind::kHost;
  spec.nice = 0;
  spec.resident_mb = w.resident_mb * mem_share;
  spec.virtual_mb = w.virtual_mb * mem_share;
  SyntheticCpuSpec cycle;
  cycle.isolated_usage = w.cpu_usage * usage_share;
  cycle.period = period;
  cycle.jitter = 0.3;
  spec.program = duty_cycle_program(cycle);
  return spec;
}
}  // namespace

std::span<const MusbusWorkload> musbus_workloads() { return kWorkloads; }

const MusbusWorkload& musbus_workload(std::string_view name) {
  for (const auto& w : kWorkloads) {
    if (w.name == name) return w;
  }
  throw ConfigError("unknown Musbus workload: " + std::string(name));
}

std::vector<os::ProcessSpec> musbus_processes(const MusbusWorkload& w) {
  std::vector<os::ProcessSpec> procs;
  // Editor: short frequent bursts (keystroke handling).
  procs.push_back(component(w, "edit", 0.05, 0.25,
                            sim::SimDuration::millis(400)));
  // Utilities: medium bursts (ls/grep/etc.).
  procs.push_back(component(w, "util", 0.10, 0.15,
                            sim::SimDuration::millis(900)));
  // Compiler: the bulk of the CPU, in long bursts (cc invocations on the
  // file the simulated user edits; bigger files -> heavier workloads).
  procs.push_back(component(w, "cc", 0.85, 0.60,
                            sim::SimDuration::millis(2500)));
  return procs;
}

}  // namespace fgcs::workload

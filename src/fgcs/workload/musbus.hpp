// Musbus-style interactive host workloads H1..H6 (§3.2.3, Table 1).
//
// The paper simulates interactive host users on text terminals with the
// Musbus Unix benchmark: interactive editing, command-line utilities, and
// compiler invocations, scaled to produce six workloads with the CPU and
// memory usages of Table 1. Each workload here is a small set of host
// processes (editor / utilities / compiler) whose aggregate isolated CPU
// usage and resident size match the corresponding Table 1 row.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "fgcs/os/process.hpp"

namespace fgcs::workload {

/// One row of Table 1 (host-workload section).
struct MusbusWorkload {
  std::string_view name;
  double cpu_usage;    // aggregate isolated CPU usage
  double resident_mb;  // aggregate resident size
  double virtual_mb;
};

/// The six host workloads of Table 1: H1..H6.
std::span<const MusbusWorkload> musbus_workloads();

/// Looks up a workload by name ("H1".."H6"); throws ConfigError if unknown.
const MusbusWorkload& musbus_workload(std::string_view name);

/// Builds the component host processes for a workload. The split follows
/// Musbus's structure: an editor (short frequent bursts), utilities
/// (medium bursts), and a compiler (long bursts), with CPU and memory
/// split so the totals match Table 1.
std::vector<os::ProcessSpec> musbus_processes(const MusbusWorkload& w);

}  // namespace fgcs::workload

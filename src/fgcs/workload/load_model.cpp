#include "fgcs/workload/load_model.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/stats/distributions.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::workload {

using sim::SimDuration;
using sim::SimTime;

namespace {
constexpr std::uint64_t kLoadTag = 0x4C4F4144;  // "LOAD"
constexpr double kBackgroundCap = 0.55;         // background stays below Th2
constexpr double kDipLoad = 0.03;               // load during a choppy dip

SimDuration minutes_d(double m) {
  return SimDuration::from_seconds(m * 60.0);
}

/// Hour-of-day of a simulated instant.
int trace_hour(SimTime t) {
  const std::int64_t day_us = SimDuration::days(1).as_micros();
  const std::int64_t within = ((t.as_micros() % day_us) + day_us) % day_us;
  return static_cast<int>(within / SimDuration::hours(1).as_micros());
}

/// Daily episode count: dithered rounding plus a little dispersion. Lab
/// usage is far more regular than Poisson — the paper's per-machine totals
/// over 92 days span only ~11% (Table 2), which requires sub-Poisson
/// day-to-day variation.
std::uint32_t sample_daily_count(util::RngStream& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double base = std::floor(mean);
  auto n = static_cast<std::uint32_t>(base);
  if (rng.uniform() < mean - base) ++n;
  const double u = rng.uniform();
  if (u < 0.12 && n > 0) --n;
  if (u > 0.88) ++n;
  return n;
}
}  // namespace

// ---------------------------------------------------------------------------
// LoadTrajectory

LoadTrajectory::LoadTrajectory(std::vector<LoadPoint> points)
    : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    fgcs::require(points_[i - 1].t < points_[i].t,
                  "LoadTrajectory points must be strictly increasing in time");
  }
}

std::size_t LoadTrajectory::index_for(SimTime t) const {
  FGCS_ASSERT(!points_.empty());
  // Last point with point.t <= t; clamp to front for early t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const LoadPoint& p) { return lhs < p.t; });
  if (it == points_.begin()) return 0;
  return static_cast<std::size_t>(it - points_.begin()) - 1;
}

double LoadTrajectory::cpu_at(SimTime t) const {
  if (points_.empty()) return 0.0;
  return points_[index_for(t)].cpu;
}

double LoadTrajectory::mem_at(SimTime t) const {
  if (points_.empty()) return 0.0;
  return points_[index_for(t)].mem_mb;
}

const LoadPoint& LoadTrajectory::Cursor::at(SimTime t) {
  const auto& pts = traj_->points();
  FGCS_ASSERT(!pts.empty());
  while (index_ + 1 < pts.size() && pts[index_ + 1].t <= t) ++index_;
  return pts[index_];
}

// ---------------------------------------------------------------------------
// LoadOverlay

void LoadOverlay::add_cpu(SimTime start, SimTime end, double cpu) {
  fgcs::require(end > start, "LoadOverlay: empty cpu interval");
  deltas_.push_back({start, cpu, 0.0});
  deltas_.push_back({end, -cpu, 0.0});
}

void LoadOverlay::add_mem(SimTime start, SimTime end, double mem_mb) {
  fgcs::require(end > start, "LoadOverlay: empty mem interval");
  deltas_.push_back({start, 0.0, mem_mb});
  deltas_.push_back({end, 0.0, -mem_mb});
}

LoadTrajectory LoadOverlay::build(SimTime origin) const {
  std::vector<LoadPoint> points;
  sweep_into(origin, points);
  return LoadTrajectory(std::move(points));
}

void LoadOverlay::build_into(SimTime origin,
                             util::ArenaVector<LoadPoint>& out) const {
  sweep_into(origin, out);
}

// ---------------------------------------------------------------------------
// Profiles

double HourlyRates::daily_total(bool weekend_day) const {
  const auto& arr = weekend_day ? weekend : weekday;
  double sum = 0.0;
  for (double v : arr) sum += v;
  return sum;
}

bool is_weekend_day(int day_index, int start_dow) {
  fgcs::require(start_dow >= 0 && start_dow < 7, "start_dow must be in [0,7)");
  const int dow = (start_dow + day_index % 7 + 7) % 7;
  return dow >= 5;
}

namespace {
/// Fills [lo_hour, hi_hour) with `value` (hi exclusive).
void fill_hours(std::array<double, 24>& a, int lo, int hi, double value) {
  for (int h = lo; h < hi; ++h) a[static_cast<std::size_t>(h)] = value;
}
}  // namespace

LabProfile LabProfile::purdue_lab() {
  LabProfile p;

  // Heavy CPU episodes: students compile/test from mid-morning deep into
  // the evening (the lab is busy past midnight on weekdays). Calibrated so
  // UEC-CPU totals land in Table 2's 283-356 range while interval lengths
  // match Figure 6.
  p.cpu_episode_rate.weekday[0] = 0.06;
  fill_hours(p.cpu_episode_rate.weekday, 1, 6, 0.004);
  p.cpu_episode_rate.weekday[6] = 0.04;
  p.cpu_episode_rate.weekday[7] = 0.05;
  p.cpu_episode_rate.weekday[8] = 0.07;
  p.cpu_episode_rate.weekday[9] = 0.10;
  fill_hours(p.cpu_episode_rate.weekday, 10, 18, 0.17);
  fill_hours(p.cpu_episode_rate.weekday, 18, 24, 0.155);

  fill_hours(p.cpu_episode_rate.weekend, 0, 8, 0.003);
  p.cpu_episode_rate.weekend[8] = 0.04;
  p.cpu_episode_rate.weekend[9] = 0.08;
  fill_hours(p.cpu_episode_rate.weekend, 10, 18, 0.105);
  fill_hours(p.cpu_episode_rate.weekend, 18, 24, 0.06);

  p.cpu_episode_mean_minutes = 200.0;
  p.cpu_episode_sigma_log = 0.35;
  p.choppy_probability = 0.08;
  p.choppy_dips_max = 1;

  // Memory episodes: Table 2's 83-121 range.
  p.mem_episode_rate.weekday[8] = 0.03;
  p.mem_episode_rate.weekday[9] = 0.05;
  fill_hours(p.mem_episode_rate.weekday, 10, 18, 0.10);
  fill_hours(p.mem_episode_rate.weekday, 18, 22, 0.07);
  p.mem_episode_rate.weekday[22] = 0.04;

  p.mem_episode_rate.weekend[8] = 0.02;
  p.mem_episode_rate.weekend[9] = 0.03;
  fill_hours(p.mem_episode_rate.weekend, 10, 18, 0.06);
  fill_hours(p.mem_episode_rate.weekend, 18, 22, 0.04);
  p.mem_episode_rate.weekend[22] = 0.02;

  // Busy-but-usable periods (S2-level load; guest reniced, no failure).
  fill_hours(p.busy_episode_rate.weekday, 9, 23, 0.12);
  fill_hours(p.busy_episode_rate.weekend, 10, 22, 0.07);

  // Diurnal background (light editing/browsing; always below Th2).
  fill_hours(p.base_load_weekday, 0, 8, 0.04);
  p.base_load_weekday[8] = 0.10;
  p.base_load_weekday[9] = 0.15;
  fill_hours(p.base_load_weekday, 10, 18, 0.28);
  fill_hours(p.base_load_weekday, 18, 22, 0.22);
  p.base_load_weekday[22] = 0.12;
  p.base_load_weekday[23] = 0.06;

  fill_hours(p.base_load_weekend, 0, 8, 0.03);
  p.base_load_weekend[8] = 0.06;
  p.base_load_weekend[9] = 0.06;
  fill_hours(p.base_load_weekend, 10, 18, 0.12);
  fill_hours(p.base_load_weekend, 18, 22, 0.09);
  p.base_load_weekend[22] = 0.05;
  p.base_load_weekend[23] = 0.05;

  return p;
}

LabProfile LabProfile::enterprise_desktop() {
  LabProfile p;

  // One office worker, business hours only; machine idle otherwise.
  fill_hours(p.cpu_episode_rate.weekday, 9, 12, 0.16);
  fill_hours(p.cpu_episode_rate.weekday, 13, 17, 0.16);
  p.cpu_episode_rate.weekday[12] = 0.06;  // lunch dip
  fill_hours(p.cpu_episode_rate.weekend, 0, 24, 0.004);

  p.cpu_episode_mean_minutes = 55.0;
  p.cpu_episode_sigma_log = 0.45;
  p.choppy_probability = 0.15;

  fill_hours(p.mem_episode_rate.weekday, 9, 17, 0.07);
  fill_hours(p.mem_episode_rate.weekend, 0, 24, 0.002);

  fill_hours(p.busy_episode_rate.weekday, 9, 17, 0.10);
  p.spike_rate_per_day = 3.0;

  fill_hours(p.base_load_weekday, 0, 8, 0.02);
  fill_hours(p.base_load_weekday, 8, 18, 0.20);
  fill_hours(p.base_load_weekday, 18, 24, 0.03);
  fill_hours(p.base_load_weekend, 0, 24, 0.02);

  // Office PCs run no locate database cron; owners rarely reboot them
  // during the day.
  p.updatedb_enabled = false;
  p.reboot_rate_per_day = 0.02;
  p.failure_rate_per_day = 0.006;

  return p;
}

void LabProfile::validate() const {
  auto check_rates = [](const std::array<double, 24>& a, const char* what) {
    for (double v : a) {
      fgcs::require(v >= 0.0, std::string(what) + " rate must be >= 0");
    }
  };
  check_rates(cpu_episode_rate.weekday, "cpu weekday");
  check_rates(cpu_episode_rate.weekend, "cpu weekend");
  check_rates(mem_episode_rate.weekday, "mem weekday");
  check_rates(mem_episode_rate.weekend, "mem weekend");
  for (double v : base_load_weekday) {
    fgcs::require(v >= 0.0 && v <= kBackgroundCap,
                  "weekday base load must stay below the background cap");
  }
  for (double v : base_load_weekend) {
    fgcs::require(v >= 0.0 && v <= kBackgroundCap,
                  "weekend base load must stay below the background cap");
  }
  fgcs::require(cpu_episode_mean_minutes > 0, "cpu episode mean must be > 0");
  fgcs::require(mem_episode_mean_minutes > 0, "mem episode mean must be > 0");
  fgcs::require(cpu_episode_load_lo <= cpu_episode_load_hi &&
                    cpu_episode_load_lo > 0 && cpu_episode_load_hi <= 1.0,
                "cpu episode load bounds invalid");
  fgcs::require(choppy_probability >= 0 && choppy_probability <= 1,
                "choppy_probability must be a probability");
  fgcs::require(choppy_dips_max >= 1, "choppy_dips_max must be >= 1");
  fgcs::require(updatedb_hour >= 0 && updatedb_hour < 24,
                "updatedb_hour must be an hour of day");
  fgcs::require(reboot_rate_per_day >= 0 && failure_rate_per_day >= 0,
                "URR rates must be >= 0");
  fgcs::require(spike_rate_per_day >= 0, "spike rate must be >= 0");
  fgcs::require(spike_min_seconds > 0 && spike_max_seconds >= spike_min_seconds,
                "spike duration bounds invalid");
  fgcs::require(busy_episode_load_lo <= busy_episode_load_hi &&
                    busy_episode_load_lo >= 0 && busy_episode_load_hi <= 1.0,
                "busy episode load bounds invalid");
  check_rates(busy_episode_rate.weekday, "busy weekday");
  check_rates(busy_episode_rate.weekend, "busy weekend");
}

// ---------------------------------------------------------------------------
// Generation

namespace {

/// Inverse of the cumulative hourly-rate function: maps mass position
/// `target` in [0, total) to a time offset within the day.
SimDuration position_for_mass(const std::array<double, 24>& rates,
                              double target) {
  double cum = 0.0;
  for (int h = 0; h < 24; ++h) {
    const double r = rates[static_cast<std::size_t>(h)];
    if (target < cum + r && r > 0.0) {
      const double frac = (target - cum) / r;
      return SimDuration::hours(h) + SimDuration::from_seconds(frac * 3600.0);
    }
    cum += r;
  }
  return SimDuration::hours(24) - SimDuration::seconds(1);
}

/// Emits a heavy CPU episode, possibly with choppy sub-threshold dips.
void emit_cpu_episode(LoadOverlay& ov, const LabProfile& p, SimTime start,
                      SimDuration dur, util::RngStream& rng) {
  const double load = rng.uniform(p.cpu_episode_load_lo, p.cpu_episode_load_hi);
  const bool choppy = rng.bernoulli(p.choppy_probability) &&
                      dur > SimDuration::minutes(20);
  if (!choppy) {
    ov.add_cpu(start, start + dur, load);
    return;
  }
  const int dips = static_cast<int>(rng.uniform_int(1, p.choppy_dips_max));
  // Dip midpoints uniformly in the middle 70% of the episode, sorted.
  // Scratch shares the overlay's arena so the choppy path stays
  // allocation-free in steady state.
  util::ArenaVector<double> mids{util::ArenaAllocator<double>(ov.arena())};
  for (int i = 0; i < dips; ++i) mids.push_back(rng.uniform(0.15, 0.85));
  std::sort(mids.begin(), mids.end());
  SimTime cursor = start;
  const SimTime end = start + dur;
  for (double mid : mids) {
    const SimDuration dip_len = minutes_d(
        rng.uniform(p.choppy_dip_min_minutes, p.choppy_dip_max_minutes));
    SimTime dip_start = start + dur * mid - dip_len / 2;
    if (dip_start <= cursor) continue;
    SimTime dip_end = dip_start + dip_len;
    if (dip_end >= end) break;
    ov.add_cpu(cursor, dip_start, load);
    ov.add_cpu(dip_start, dip_end, kDipLoad);
    cursor = dip_end;
  }
  if (cursor < end) ov.add_cpu(cursor, end, load);
}

}  // namespace

void generate_machine_load_into(const LabProfile& profile, std::uint64_t seed,
                                std::uint32_t machine_id, int days,
                                int start_dow, util::Arena* arena,
                                ArenaLoadTrace& out) {
  fgcs::require(days > 0, "trace horizon must be at least one day");

  LoadOverlay ov(arena);
  util::ArenaVector<Downtime> downtimes{util::ArenaAllocator<Downtime>(arena)};
  const SimTime epoch = SimTime::epoch();

  for (int day = 0; day < days; ++day) {
    util::RngStream rng(seed, {kLoadTag, machine_id,
                               static_cast<std::uint64_t>(day)});
    const bool we = is_weekend_day(day, start_dow);
    const SimTime day_start = epoch + SimDuration::days(day);

    // Diurnal background with short-period noise.
    const auto& base =
        we ? profile.base_load_weekend : profile.base_load_weekday;
    const std::int64_t noise_us = profile.base_noise_period.as_micros();
    FGCS_ASSERT(noise_us > 0);
    const auto segs_per_hour =
        std::max<std::int64_t>(1, SimDuration::hours(1).as_micros() / noise_us);
    for (int h = 0; h < 24; ++h) {
      const SimTime hour_start = day_start + SimDuration::hours(h);
      for (std::int64_t s = 0; s < segs_per_hour; ++s) {
        const SimTime seg_start =
            hour_start + profile.base_noise_period * s;
        const SimTime seg_end = seg_start + profile.base_noise_period;
        const double cpu =
            std::clamp(base[static_cast<std::size_t>(h)] +
                           profile.base_noise * rng.uniform(-1.0, 1.0),
                       0.0, kBackgroundCap);
        if (cpu > 0.0) ov.add_cpu(seg_start, seg_end, cpu);
      }
    }

    // Base host memory, redrawn every two hours.
    for (int seg = 0; seg < 12; ++seg) {
      const SimTime s = day_start + SimDuration::hours(2 * seg);
      ov.add_mem(s, s + SimDuration::hours(2),
                 rng.uniform(profile.base_mem_lo, profile.base_mem_hi));
    }

    // updatedb cron: high system CPU on every machine, every day (§5.3).
    if (profile.updatedb_enabled) {
      const SimTime s = day_start + SimDuration::hours(profile.updatedb_hour);
      ov.add_cpu(s, s + minutes_d(profile.updatedb_minutes),
                 profile.updatedb_load);
    }

    // Heavy CPU episodes, stratified over the hourly-rate profile so
    // spacing is regular (students arrive steadily through the day).
    struct Span {
      SimTime start;
      SimDuration dur;
    };
    util::ArenaVector<Span> cpu_episodes{util::ArenaAllocator<Span>(arena)};
    {
      const auto& rates =
          we ? profile.cpu_episode_rate.weekend : profile.cpu_episode_rate.weekday;
      const double total = profile.cpu_episode_rate.daily_total(we);
      const auto n = sample_daily_count(rng, total);
      for (std::uint32_t i = 0; i < n; ++i) {
        const double u =
            (static_cast<double>(i) + rng.uniform(0.35, 0.65)) /
            static_cast<double>(n);
        const SimTime start = day_start + position_for_mass(rates, u * total);
        double dur_min = stats::sample_lognormal_mean(
            rng, profile.cpu_episode_mean_minutes, profile.cpu_episode_sigma_log);
        dur_min = std::clamp(dur_min, 5.0, 420.0);
        cpu_episodes.push_back({start, minutes_d(dur_min)});
        emit_cpu_episode(ov, profile, start, minutes_d(dur_min), rng);
      }
    }

    // Memory episodes. Most belong to the same heavy-use session as a CPU
    // episode (the IDE that compiles also bloats memory) and overlap its
    // tail; the rest are independent desktop-app sessions.
    {
      const auto& rates =
          we ? profile.mem_episode_rate.weekend : profile.mem_episode_rate.weekday;
      const double total = profile.mem_episode_rate.daily_total(we);
      const auto n = sample_daily_count(rng, total);
      for (std::uint32_t i = 0; i < n; ++i) {
        double dur_min = stats::sample_lognormal_mean(
            rng, profile.mem_episode_mean_minutes, profile.mem_episode_sigma_log);
        dur_min = std::clamp(dur_min, 3.0, 240.0);
        const SimDuration dur = minutes_d(dur_min);
        SimTime start;
        if (!cpu_episodes.empty() &&
            rng.bernoulli(profile.mem_attach_probability)) {
          const auto& host = cpu_episodes[rng.uniform_index(cpu_episodes.size())];
          // Overlap the tail: begin inside the episode, extend past its end.
          start = host.start + host.dur - dur * rng.uniform(0.2, 0.6);
        } else {
          const double u =
              (static_cast<double>(i) + rng.uniform(0.35, 0.65)) /
              static_cast<double>(n);
          start = day_start + position_for_mass(rates, u * total);
        }
        const double mb =
            rng.uniform(profile.mem_episode_mb_lo, profile.mem_episode_mb_hi);
        ov.add_mem(start, start + dur, mb);
      }
    }

    // Busy-but-usable periods: load between Th1 and Th2.
    {
      const auto& rates = we ? profile.busy_episode_rate.weekend
                             : profile.busy_episode_rate.weekday;
      const double total = profile.busy_episode_rate.daily_total(we);
      const auto n = sample_daily_count(rng, total);
      for (std::uint32_t i = 0; i < n; ++i) {
        const double u =
            (static_cast<double>(i) + rng.uniform(0.35, 0.65)) /
            static_cast<double>(n);
        const SimTime start = day_start + position_for_mass(rates, u * total);
        double dur_min = stats::sample_lognormal_mean(
            rng, profile.busy_episode_mean_minutes,
            profile.busy_episode_sigma_log);
        dur_min = std::clamp(dur_min, 5.0, 240.0);
        // Contribution on top of the background, targeting a *total* in
        // [busy_lo, busy_hi]: subtract the base level at the start hour
        // (plus noise headroom) so the sum stays below Th2.
        const double target = rng.uniform(profile.busy_episode_load_lo,
                                          profile.busy_episode_load_hi);
        const int start_hour = trace_hour(start);
        const double contribution =
            target - base[static_cast<std::size_t>(start_hour)] -
            profile.base_noise;
        if (contribution > 0.0) {
          ov.add_cpu(start, start + minutes_d(dur_min), contribution);
        }
      }
    }

    // Sub-minute load spikes (remote X clients, system processes): common,
    // absorbed by the 1-minute suspend rule.
    {
      const auto n = sample_daily_count(rng, profile.spike_rate_per_day);
      for (std::uint32_t i = 0; i < n; ++i) {
        const SimTime start =
            day_start + SimDuration::from_seconds(rng.uniform(0.0, 86400.0));
        const SimDuration dur = SimDuration::from_seconds(
            rng.uniform(profile.spike_min_seconds, profile.spike_max_seconds));
        ov.add_cpu(start, start + dur, profile.spike_load);
      }
    }

    // URR: owner reboots and hardware/software failures (§5.1).
    {
      const auto reboots = stats::sample_poisson(rng, profile.reboot_rate_per_day);
      for (std::uint32_t i = 0; i < reboots; ++i) {
        Downtime d;
        d.start = day_start + SimDuration::from_seconds(rng.uniform(0.0, 86400.0));
        d.duration = SimDuration::from_seconds(rng.uniform(
            profile.reboot_downtime_s_lo, profile.reboot_downtime_s_hi));
        d.is_reboot = true;
        downtimes.push_back(d);
      }
      const auto failures =
          stats::sample_poisson(rng, profile.failure_rate_per_day);
      for (std::uint32_t i = 0; i < failures; ++i) {
        Downtime d;
        d.start = day_start + SimDuration::from_seconds(rng.uniform(0.0, 86400.0));
        d.duration = SimDuration::from_seconds(
            rng.exponential(profile.failure_downtime_mean_hours * 3600.0));
        d.is_reboot = false;
        downtimes.push_back(d);
      }
    }
  }

  std::sort(downtimes.begin(), downtimes.end(),
            [](const Downtime& a, const Downtime& b) { return a.start < b.start; });
  // Drop downtimes swallowed by a preceding one (rare).
  auto& merged = out.downtimes;
  for (const auto& d : downtimes) {
    if (!merged.empty() && d.start < merged.back().start + merged.back().duration) {
      continue;
    }
    merged.push_back(d);
  }

  ov.build_into(epoch, out.points);
}

MachineLoadTrace generate_machine_load(const LabProfile& profile,
                                       std::uint64_t seed,
                                       std::uint32_t machine_id, int days,
                                       int start_dow) {
  profile.validate();
  // One generation core: the public API materializes the arena-native
  // result into the std::vector-backed types, so both paths are
  // value-identical by construction.
  ArenaLoadTrace scratch(nullptr);
  generate_machine_load_into(profile, seed, machine_id, days, start_dow,
                             nullptr, scratch);
  MachineLoadTrace trace;
  trace.load = LoadTrajectory(
      std::vector<LoadPoint>(scratch.points.begin(), scratch.points.end()));
  trace.downtimes.assign(scratch.downtimes.begin(), scratch.downtimes.end());
  return trace;
}

}  // namespace fgcs::workload

// Host-load model for the testbed predictability study (§5).
//
// The paper traced 20 student-lab machines for three months. We do not
// have the lab; instead, each machine's *host load process* — aggregate
// host CPU usage L_H(t) and host memory usage M_H(t) — is synthesized as a
// piecewise-constant trajectory from a LabProfile:
//
//   * a diurnal background load (students' light activity, system daemons),
//   * heavy CPU episodes (compile/test sessions pushing L_H above Th2),
//     placed by a stratified non-homogeneous process over the hourly
//     profile, optionally "choppy" (brief dips that produce the paper's
//     <5 min availability gaps, §5.2),
//   * memory episodes (IDE/desktop apps exhausting free memory -> S4),
//   * the 4 AM updatedb cron job: 30 minutes of high system CPU on every
//     machine, every day (the paper's 4-5 AM spike of exactly 20, §5.3),
//   * URR downtimes: owner reboots (~90%, < 1 min) and rare hardware/
//     software failures (longer), §5.1.
//
// The availability *detector* (fgcs::monitor) then runs over samples of
// these trajectories exactly as the iShare resource monitor ran over
// vmstat output; nothing in this module decides what counts as
// unavailability.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "fgcs/sim/time.hpp"
#include "fgcs/util/arena.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::workload {

/// Piecewise-constant host-load trajectory: value_i holds on [t_i, t_{i+1}).
struct LoadPoint {
  sim::SimTime t;
  double cpu;     // host CPU usage in [0, 1]
  double mem_mb;  // host memory usage (resident), MB
};

class LoadTrajectory {
 public:
  LoadTrajectory() = default;
  /// Points must be sorted by time (validated); first point defines t0.
  explicit LoadTrajectory(std::vector<LoadPoint> points);

  const std::vector<LoadPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Value lookup by binary search. Times before the first point return
  /// the first point's value.
  double cpu_at(sim::SimTime t) const;
  double mem_at(sim::SimTime t) const;

  /// Monotone forward iteration for samplers (amortized O(1) per step).
  class Cursor {
   public:
    explicit Cursor(const LoadTrajectory& traj) : traj_(&traj) {}
    /// Advances to `t` (must be non-decreasing across calls).
    const LoadPoint& at(sim::SimTime t);

   private:
    const LoadTrajectory* traj_;
    std::size_t index_ = 0;
  };

 private:
  std::size_t index_for(sim::SimTime t) const;
  std::vector<LoadPoint> points_;
};

/// Accumulates overlapping CPU/memory contributions and builds a merged
/// trajectory (CPU capped at 1.0).
class LoadOverlay {
 public:
  /// With a non-null arena, all internal storage (the delta list and the
  /// sort scratch of build/build_into) bump-allocates from it.
  explicit LoadOverlay(util::Arena* arena = nullptr)
      : deltas_(util::ArenaAllocator<Delta>(arena)) {}

  /// Adds `cpu` load over [start, end).
  void add_cpu(sim::SimTime start, sim::SimTime end, double cpu);
  /// Adds `mem_mb` of host memory over [start, end).
  void add_mem(sim::SimTime start, sim::SimTime end, double mem_mb);

  /// Sweeps all contributions into a LoadTrajectory starting at `origin`.
  LoadTrajectory build(sim::SimTime origin) const;

  /// Identical sweep, written into `out` (typically arena-backed)
  /// without constructing a LoadTrajectory. Points are strictly
  /// increasing in time by construction.
  void build_into(sim::SimTime origin,
                  util::ArenaVector<LoadPoint>& out) const;

  util::Arena* arena() const { return deltas_.get_allocator().arena(); }

 private:
  struct Delta {
    sim::SimTime t;
    double cpu;
    double mem;
  };

  // The one sweep implementation both build flavors share; Vec only
  // needs push_back/back/clear.
  template <class Vec>
  void sweep_into(sim::SimTime origin, Vec& points) const {
    util::ArenaVector<Delta> sorted(deltas_.begin(), deltas_.end(),
                                    deltas_.get_allocator());
    std::sort(sorted.begin(), sorted.end(),
              [](const Delta& a, const Delta& b) { return a.t < b.t; });
    points.push_back({origin, 0.0, 0.0});
    double cpu = 0.0, mem = 0.0;
    std::size_t i = 0;
    while (i < sorted.size()) {
      const sim::SimTime t = sorted[i].t;
      while (i < sorted.size() && sorted[i].t == t) {
        cpu += sorted[i].cpu;
        mem += sorted[i].mem;
        ++i;
      }
      // Numerical noise from +=/-= pairs can leave tiny negatives.
      const double cpu_val = std::clamp(cpu, 0.0, 1.0);
      const double mem_val = std::max(0.0, mem);
      if (t <= points.back().t) {
        points.back().cpu = cpu_val;
        points.back().mem_mb = mem_val;
      } else {
        points.push_back({t, cpu_val, mem_val});
      }
    }
  }

  util::ArenaVector<Delta> deltas_;
};

/// A URR downtime event (owner reboot or hardware/software failure).
struct Downtime {
  sim::SimTime start;
  sim::SimDuration duration;
  bool is_reboot;  // true: intentional revocation; false: failure
};

/// Hour-of-day rates, split by day class.
struct HourlyRates {
  std::array<double, 24> weekday{};
  std::array<double, 24> weekend{};

  double daily_total(bool weekend_day) const;
};

/// Day-of-week helper: day 0 has day-of-week `start_dow` (0 = Monday).
/// Saturday/Sunday (5, 6) are weekend days. The paper's trace starts
/// Monday, August 15, 2005.
bool is_weekend_day(int day_index, int start_dow = 0);

/// Calibratable description of a testbed machine's host workload.
struct LabProfile {
  // -- heavy CPU episodes (drive S3) --------------------------------------
  HourlyRates cpu_episode_rate;                 // episodes/hour
  double cpu_episode_mean_minutes = 45.0;       // lognormal mean
  double cpu_episode_sigma_log = 0.50;          // lognormal shape
  double cpu_episode_load_lo = 0.72;
  double cpu_episode_load_hi = 1.00;
  /// Probability an episode is choppy (contains short sub-threshold dips).
  double choppy_probability = 0.30;
  int choppy_dips_max = 2;
  double choppy_dip_min_minutes = 1.2;
  double choppy_dip_max_minutes = 4.0;

  // -- memory episodes (drive S4) ------------------------------------------
  HourlyRates mem_episode_rate;
  double mem_episode_mean_minutes = 22.0;
  double mem_episode_sigma_log = 0.45;
  double mem_episode_mb_lo = 600.0;
  double mem_episode_mb_hi = 850.0;
  /// Probability a memory episode belongs to the same heavy-use session as
  /// a CPU episode and overlaps its tail (the IDE session that both
  /// compiles and bloats memory). The rest are placed independently.
  double mem_attach_probability = 0.70;

  // -- transient spikes (absorbed by the 1-minute suspend rule, §4) --------
  /// "We find it very common that the host CPU load which exceeds Th2 will
  /// drop down shortly after several seconds" — remote X clients, system
  /// processes. These never become S3 under the paper's 1-minute rule but
  /// dominate occurrences if the sustain window is removed.
  double spike_rate_per_day = 8.0;
  double spike_min_seconds = 8.0;
  double spike_max_seconds = 40.0;
  double spike_load = 0.85;

  // -- busy-but-usable periods (S2-level load) ------------------------------
  /// Moderate load episodes between Th1 and Th2: the machine is busy, the
  /// guest runs reniced, no failure. They matter for the Th2-sensitivity
  /// ablation (a mis-calibrated lower Th2 reclassifies them as S3).
  HourlyRates busy_episode_rate;
  double busy_episode_mean_minutes = 45.0;
  double busy_episode_sigma_log = 0.4;
  double busy_episode_load_lo = 0.38;
  double busy_episode_load_hi = 0.56;

  // -- diurnal background ---------------------------------------------------
  std::array<double, 24> base_load_weekday{};
  std::array<double, 24> base_load_weekend{};
  /// Background jitter amplitude; resampled every base_noise_period.
  double base_noise = 0.06;
  sim::SimDuration base_noise_period = sim::SimDuration::minutes(5);
  double base_mem_lo = 120.0;
  double base_mem_hi = 280.0;

  // -- updatedb cron (system process, counted as host by the monitor) ------
  bool updatedb_enabled = true;
  int updatedb_hour = 4;
  double updatedb_minutes = 30.0;
  double updatedb_load = 0.92;

  // -- URR ------------------------------------------------------------------
  double reboot_rate_per_day = 0.075;
  double failure_rate_per_day = 0.008;
  double reboot_downtime_s_lo = 20.0;
  double reboot_downtime_s_hi = 50.0;
  double failure_downtime_mean_hours = 2.0;

  /// Calibrated to reproduce the paper's Purdue lab statistics
  /// (Table 2, Figures 6 and 7).
  static LabProfile purdue_lab();

  /// The paper's proposed future-work testbed: enterprise desktops
  /// (9-to-5 usage, no updatedb spike at 4 AM, fewer reboots).
  static LabProfile enterprise_desktop();

  void validate() const;
};

/// Synthesized host behavior of one machine over the trace horizon.
struct MachineLoadTrace {
  LoadTrajectory load;
  std::vector<Downtime> downtimes;  // sorted by start, non-overlapping
};

/// Synthesized host behavior of one machine, arena-backed: the columnar
/// testbed walk reads the raw point/downtime columns directly, and every
/// byte lives in the caller's arena (or the heap when none is given).
struct ArenaLoadTrace {
  explicit ArenaLoadTrace(util::Arena* arena)
      : points(util::ArenaAllocator<LoadPoint>(arena)),
        downtimes(util::ArenaAllocator<Downtime>(arena)) {}

  /// Strictly increasing in time; value_i holds on [t_i, t_{i+1}).
  util::ArenaVector<LoadPoint> points;
  /// Sorted by start, non-overlapping.
  util::ArenaVector<Downtime> downtimes;
};

/// Generates machine `machine_id`'s load trace for `days` days.
/// Deterministic in (profile, seed, machine_id).
MachineLoadTrace generate_machine_load(const LabProfile& profile,
                                       std::uint64_t seed,
                                       std::uint32_t machine_id, int days,
                                       int start_dow = 0);

/// The generation core the wrapper above delegates to: identical values
/// (same RNG draw order, same arithmetic), but all transient and output
/// storage draws from `arena` and the profile is NOT re-validated —
/// callers on the per-machine hot path validate once up front. With a
/// warmed-up arena this performs zero heap allocations.
void generate_machine_load_into(const LabProfile& profile, std::uint64_t seed,
                                std::uint32_t machine_id, int days,
                                int start_dow, util::Arena* arena,
                                ArenaLoadTrace& out);

}  // namespace fgcs::workload

#include "fgcs/predict/robust_history.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/util/error.hpp"

namespace fgcs::predict {

RobustHistoryPredictor::RobustHistoryPredictor(RobustHistoryConfig config)
    : config_(config) {
  fgcs::require(config_.history_days >= 1, "history_days must be >= 1");
  fgcs::require(config_.discount > 0.0 && config_.discount <= 1.0,
                "discount must be in (0, 1]");
  fgcs::require(config_.prior_weight >= 0.0, "prior_weight must be >= 0");
}

std::string RobustHistoryPredictor::name() const {
  return "robust-history(k=" + std::to_string(config_.history_days) + ",d=" +
         std::to_string(config_.discount).substr(0, 4) + ")";
}

std::vector<sim::SimTime> RobustHistoryPredictor::history_windows(
    const PredictionQuery& q) const {
  const auto& cal = calendar();
  const int query_day = cal.day_index(q.start);
  const bool want_weekend = cal.is_weekend_day(query_day);
  const sim::SimDuration offset = q.start - cal.day_start(query_day);

  std::vector<sim::SimTime> windows;
  for (int d = query_day - 1; d >= 0 &&
       windows.size() < static_cast<std::size_t>(config_.history_days); --d) {
    if (cal.is_weekend_day(d) != want_weekend) continue;
    const sim::SimTime w_start = cal.day_start(d) + offset;
    if (w_start + q.length > q.start) continue;  // must precede the query
    windows.push_back(w_start);
  }
  return windows;  // most recent first
}

double RobustHistoryPredictor::predict_availability(
    const PredictionQuery& q) const {
  const auto windows = history_windows(q);
  // Weighted vote with a prior toward 0.5.
  double weight_sum = config_.prior_weight;
  double free_sum = 0.5 * config_.prior_weight;
  double w = 1.0;
  for (const sim::SimTime start : windows) {
    const bool free_window =
        !index().any_overlap(q.machine, start, start + q.length);
    weight_sum += w;
    if (free_window) free_sum += w;
    w *= config_.discount;
  }
  return free_sum / weight_sum;
}

double RobustHistoryPredictor::predict_occurrences(
    const PredictionQuery& q) const {
  const auto windows = history_windows(q);
  if (windows.empty()) return 0.0;
  std::vector<double> counts;
  counts.reserve(windows.size());
  for (const sim::SimTime start : windows) {
    counts.push_back(static_cast<double>(
        index().count_starts_in(q.machine, start, start + q.length)));
  }
  std::sort(counts.begin(), counts.end());
  std::size_t lo = 0, hi = counts.size();
  if (counts.size() >= config_.trim_threshold) {
    // Drop the single most irregular window from each end.
    ++lo;
    --hi;
  }
  double sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i) sum += counts[i];
  return sum / static_cast<double>(hi - lo);
}

}  // namespace fgcs::predict

// The paper's proposed predictor (§5.3):
//
//   "it is feasible to predict resource availability over an arbitrary
//    future time window, if the prediction uses history data for the
//    corresponding time windows from previous weekdays or weekends."
//
// For a query window on machine m, HistoryWindowPredictor looks at the
// same clock window on the most recent `history_days` days of the same
// day class (weekday/weekend), counts how many of those windows were
// failure-free, and reports the Laplace-smoothed fraction. Expected
// occurrences are the mean count over the history windows.
#pragma once

#include "fgcs/predict/predictor.hpp"

namespace fgcs::predict {

struct HistoryWindowConfig {
  /// How many previous same-class days to consult.
  int history_days = 8;
  /// Pool the corresponding windows of every machine in the testbed
  /// (more data per estimate, ignores per-machine idiosyncrasies).
  bool pool_machines = false;
  /// Laplace smoothing: p = (free + alpha) / (n + 2*alpha).
  double laplace_alpha = 1.0;
};

class HistoryWindowPredictor : public AvailabilityPredictor {
 public:
  explicit HistoryWindowPredictor(HistoryWindowConfig config = {});

  std::string name() const override;

  double predict_availability(const PredictionQuery& q) const override;
  double predict_occurrences(const PredictionQuery& q) const override;

 private:
  /// Collects the same-clock windows on previous same-class days, entirely
  /// before q.start. Invokes fn(machine, window_start) per window.
  template <typename Fn>
  void for_each_history_window(const PredictionQuery& q, Fn&& fn) const;

  HistoryWindowConfig config_;
};

}  // namespace fgcs::predict

#include "fgcs/predict/evaluation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::predict {

double EvaluationResult::expected_calibration_error() const {
  double weighted = 0.0;
  std::size_t total = 0;
  for (const auto& bucket : reliability) {
    if (bucket.count == 0) continue;
    weighted += static_cast<double>(bucket.count) *
                std::abs(bucket.observed_available - bucket.mean_predicted);
    total += bucket.count;
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

}  // namespace fgcs::predict

namespace fgcs::predict {

void EvaluationConfig::validate() const {
  fgcs::require(end > begin, "evaluation period must be non-empty");
  fgcs::require(window > sim::SimDuration::zero(), "window must be > 0");
  fgcs::require(stride > sim::SimDuration::zero(), "stride must be > 0");
  fgcs::require(decision_threshold >= 0.0 && decision_threshold <= 1.0,
                "decision_threshold must be a probability");
}

namespace {

/// One machine's evaluation partials. Both the sequential and the
/// parallel path compute these per machine and merge them in machine
/// order, so the two paths are floating-point bit-identical (summation
/// order never depends on the worker count).
struct MachineAccum {
  std::size_t queries = 0;
  double brier_sum = 0.0;
  double occ_mae_sum = 0.0;
  std::size_t correct = 0;
  std::size_t truly_available = 0;
  std::size_t tp = 0;  // predicted available, was available
  std::size_t fp = 0;  // predicted available, was unavailable
  std::array<std::size_t, 10> bucket_count{};
  std::array<double, 10> bucket_pred_sum{};
  std::array<std::size_t, 10> bucket_avail{};
};

MachineAccum evaluate_machine(const AvailabilityPredictor& predictor,
                              const trace::TraceIndex& index,
                              const EvaluationConfig& config,
                              trace::MachineId m) {
  MachineAccum acc;
  for (sim::SimTime t = config.begin; t + config.window <= config.end;
       t += config.stride) {
    // Skip instants where the machine is already down: a scheduler
    // would not consider submitting there.
    bool inside = false;
    index.last_end_before(m, t, &inside);
    if (inside) continue;

    PredictionQuery q{m, t, config.window};
    const double p = predictor.predict_availability(q);
    FGCS_ASSERT(p >= 0.0 && p <= 1.0);
    const bool actual_available = !index.any_overlap(m, t, t + config.window);
    const bool predicted_available = p >= config.decision_threshold;

    ++acc.queries;
    const double truth = actual_available ? 1.0 : 0.0;
    acc.brier_sum += (p - truth) * (p - truth);
    {
      auto bucket = static_cast<std::size_t>(p * 10.0);
      bucket = std::min<std::size_t>(bucket, 9);
      acc.bucket_count[bucket] += 1;
      acc.bucket_pred_sum[bucket] += p;
      if (actual_available) acc.bucket_avail[bucket] += 1;
    }
    if (predicted_available == actual_available) ++acc.correct;
    if (actual_available) ++acc.truly_available;
    if (predicted_available) {
      (actual_available ? acc.tp : acc.fp)++;
    }

    const double predicted_occ = predictor.predict_occurrences(q);
    const auto actual_occ =
        static_cast<double>(index.count_starts_in(m, t, t + config.window));
    acc.occ_mae_sum += std::abs(predicted_occ - actual_occ);
  }
  return acc;
}

}  // namespace

EvaluationResult evaluate_predictor(AvailabilityPredictor& predictor,
                                    const trace::TraceIndex& index,
                                    const trace::TraceCalendar& calendar,
                                    const EvaluationConfig& config) {
  config.validate();
  predictor.attach(index, calendar);

  EvaluationResult result;
  result.predictor = predictor.name();

  obs::Observer* const o = obs::observer();
  const auto wall_start = o != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};

  // Per-machine partials, then an ordered merge. The parallel path only
  // changes *where* each machine's partial is computed, never the merge
  // order — the result is bit-identical either way.
  const std::size_t machine_count = index.machine_count();
  std::vector<MachineAccum> per_machine(machine_count);
  const auto eval_machine = [&](std::size_t m) {
    per_machine[m] = evaluate_machine(
        predictor, index, config, static_cast<trace::MachineId>(m));
  };
  if (config.parallel) {
    util::parallel_for(machine_count, eval_machine);
  } else {
    for (std::size_t m = 0; m < machine_count; ++m) eval_machine(m);
  }

  double brier_sum = 0.0;
  double occ_mae_sum = 0.0;
  std::size_t correct = 0;
  std::size_t truly_available = 0;
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::array<double, 10> bucket_pred_sum{};
  std::array<std::size_t, 10> bucket_avail{};
  for (const MachineAccum& acc : per_machine) {
    result.queries += acc.queries;
    brier_sum += acc.brier_sum;
    occ_mae_sum += acc.occ_mae_sum;
    correct += acc.correct;
    truly_available += acc.truly_available;
    tp += acc.tp;
    fp += acc.fp;
    for (std::size_t b = 0; b < 10; ++b) {
      result.reliability[b].count += acc.bucket_count[b];
      bucket_pred_sum[b] += acc.bucket_pred_sum[b];
      bucket_avail[b] += acc.bucket_avail[b];
    }
  }

  // Per-predictor evaluation timing and quality, labeled by name so the
  // whole predictor panel lands in one metric family.
  const auto record_metrics = [&] {
    if (o == nullptr) return;
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    auto& metrics = o->metrics();
    const obs::Labels labels{{"predictor", result.predictor}};
    metrics.counter("predict.evaluations", labels).inc();
    metrics.counter("predict.queries", labels).inc(result.queries);
    metrics.histogram("predict.eval_seconds", labels).observe(wall.count());
    metrics.gauge("predict.accuracy", labels).set(result.accuracy);
    metrics.gauge("predict.brier", labels).set(result.brier);
    metrics.gauge("predict.false_positive_rate", labels)
        .set(result.false_positive_rate);
  };

  if (result.queries == 0) {
    record_metrics();
    return result;
  }
  for (std::size_t b = 0; b < 10; ++b) {
    auto& bucket = result.reliability[b];
    if (bucket.count == 0) continue;
    bucket.mean_predicted =
        bucket_pred_sum[b] / static_cast<double>(bucket.count);
    bucket.observed_available = static_cast<double>(bucket_avail[b]) /
                                static_cast<double>(bucket.count);
  }
  const auto n = static_cast<double>(result.queries);
  result.brier = brier_sum / n;
  result.accuracy = static_cast<double>(correct) / n;
  result.occurrence_mae = occ_mae_sum / n;
  result.base_availability = static_cast<double>(truly_available) / n;
  if (truly_available > 0) {
    result.true_positive_rate =
        static_cast<double>(tp) / static_cast<double>(truly_available);
  }
  const std::size_t truly_unavailable = result.queries - truly_available;
  if (truly_unavailable > 0) {
    result.false_positive_rate =
        static_cast<double>(fp) / static_cast<double>(truly_unavailable);
  }
  record_metrics();
  return result;
}

}  // namespace fgcs::predict

#include "fgcs/predict/evaluation.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {

double EvaluationResult::expected_calibration_error() const {
  double weighted = 0.0;
  std::size_t total = 0;
  for (const auto& bucket : reliability) {
    if (bucket.count == 0) continue;
    weighted += static_cast<double>(bucket.count) *
                std::abs(bucket.observed_available - bucket.mean_predicted);
    total += bucket.count;
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

}  // namespace fgcs::predict

namespace fgcs::predict {

void EvaluationConfig::validate() const {
  fgcs::require(end > begin, "evaluation period must be non-empty");
  fgcs::require(window > sim::SimDuration::zero(), "window must be > 0");
  fgcs::require(stride > sim::SimDuration::zero(), "stride must be > 0");
  fgcs::require(decision_threshold >= 0.0 && decision_threshold <= 1.0,
                "decision_threshold must be a probability");
}

EvaluationResult evaluate_predictor(AvailabilityPredictor& predictor,
                                    const trace::TraceIndex& index,
                                    const trace::TraceCalendar& calendar,
                                    const EvaluationConfig& config) {
  config.validate();
  predictor.attach(index, calendar);

  EvaluationResult result;
  result.predictor = predictor.name();

  obs::Observer* const o = obs::observer();
  const auto wall_start = o != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};

  double brier_sum = 0.0;
  double occ_mae_sum = 0.0;
  std::size_t correct = 0;
  std::size_t truly_available = 0;
  std::size_t tp = 0;  // predicted available, was available
  std::size_t fp = 0;  // predicted available, was unavailable
  std::array<double, 10> bucket_pred_sum{};
  std::array<std::size_t, 10> bucket_avail{};

  for (trace::MachineId m = 0; m < index.machine_count(); ++m) {
    for (sim::SimTime t = config.begin; t + config.window <= config.end;
         t += config.stride) {
      // Skip instants where the machine is already down: a scheduler
      // would not consider submitting there.
      bool inside = false;
      index.last_end_before(m, t, &inside);
      if (inside) continue;

      PredictionQuery q{m, t, config.window};
      const double p = predictor.predict_availability(q);
      FGCS_ASSERT(p >= 0.0 && p <= 1.0);
      const bool actual_available =
          !index.any_overlap(m, t, t + config.window);
      const bool predicted_available = p >= config.decision_threshold;

      ++result.queries;
      const double truth = actual_available ? 1.0 : 0.0;
      brier_sum += (p - truth) * (p - truth);
      {
        auto bucket = static_cast<std::size_t>(p * 10.0);
        bucket = std::min<std::size_t>(bucket, 9);
        result.reliability[bucket].count += 1;
        bucket_pred_sum[bucket] += p;
        if (actual_available) bucket_avail[bucket] += 1;
      }
      if (predicted_available == actual_available) ++correct;
      if (actual_available) ++truly_available;
      if (predicted_available) {
        (actual_available ? tp : fp)++;
      }

      const double predicted_occ = predictor.predict_occurrences(q);
      const auto actual_occ = static_cast<double>(
          index.count_starts_in(m, t, t + config.window));
      occ_mae_sum += std::abs(predicted_occ - actual_occ);
    }
  }

  // Per-predictor evaluation timing and quality, labeled by name so the
  // whole predictor panel lands in one metric family.
  const auto record_metrics = [&] {
    if (o == nullptr) return;
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    auto& metrics = o->metrics();
    const obs::Labels labels{{"predictor", result.predictor}};
    metrics.counter("predict.evaluations", labels).inc();
    metrics.counter("predict.queries", labels).inc(result.queries);
    metrics.histogram("predict.eval_seconds", labels).observe(wall.count());
    metrics.gauge("predict.accuracy", labels).set(result.accuracy);
    metrics.gauge("predict.brier", labels).set(result.brier);
    metrics.gauge("predict.false_positive_rate", labels)
        .set(result.false_positive_rate);
  };

  if (result.queries == 0) {
    record_metrics();
    return result;
  }
  for (std::size_t b = 0; b < 10; ++b) {
    auto& bucket = result.reliability[b];
    if (bucket.count == 0) continue;
    bucket.mean_predicted =
        bucket_pred_sum[b] / static_cast<double>(bucket.count);
    bucket.observed_available = static_cast<double>(bucket_avail[b]) /
                                static_cast<double>(bucket.count);
  }
  const auto n = static_cast<double>(result.queries);
  result.brier = brier_sum / n;
  result.accuracy = static_cast<double>(correct) / n;
  result.occurrence_mae = occ_mae_sum / n;
  result.base_availability = static_cast<double>(truly_available) / n;
  if (truly_available > 0) {
    result.true_positive_rate =
        static_cast<double>(tp) / static_cast<double>(truly_available);
  }
  const std::size_t truly_unavailable = result.queries - truly_available;
  if (truly_unavailable > 0) {
    result.false_positive_rate =
        static_cast<double>(fp) / static_cast<double>(truly_unavailable);
  }
  record_metrics();
  return result;
}

}  // namespace fgcs::predict

#include "fgcs/predict/history_window.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"

namespace fgcs::predict {

HistoryWindowPredictor::HistoryWindowPredictor(HistoryWindowConfig config)
    : config_(config) {
  fgcs::require(config_.history_days >= 1,
                "history_days must be at least 1");
  fgcs::require(config_.laplace_alpha >= 0.0,
                "laplace_alpha must be >= 0");
}

std::string HistoryWindowPredictor::name() const {
  std::string n = "history-window(k=" + std::to_string(config_.history_days);
  if (config_.pool_machines) n += ",pooled";
  n += ")";
  return n;
}

template <typename Fn>
void HistoryWindowPredictor::for_each_history_window(
    const PredictionQuery& q, Fn&& fn) const {
  const auto& cal = calendar();
  const int query_day = cal.day_index(q.start);
  const bool want_weekend = cal.is_weekend_day(query_day);
  const sim::SimDuration offset = q.start - cal.day_start(query_day);

  int used = 0;
  for (int d = query_day - 1; d >= 0 && used < config_.history_days; --d) {
    if (cal.is_weekend_day(d) != want_weekend) continue;
    const sim::SimTime w_start = cal.day_start(d) + offset;
    // Only windows that end strictly before the query start are usable
    // history (matters for windows longer than the day gap).
    if (w_start + q.length > q.start) continue;
    ++used;
    if (config_.pool_machines) {
      for (trace::MachineId m = 0; m < index().machine_count(); ++m) {
        fn(m, w_start);
      }
    } else {
      fn(q.machine, w_start);
    }
  }
}

double HistoryWindowPredictor::predict_availability(
    const PredictionQuery& q) const {
  std::size_t windows = 0;
  std::size_t free_windows = 0;
  for_each_history_window(q, [&](trace::MachineId m, sim::SimTime w_start) {
    ++windows;
    if (!index().any_overlap(m, w_start, w_start + q.length)) {
      ++free_windows;
    }
  });
  const double a = config_.laplace_alpha;
  return (static_cast<double>(free_windows) + a) /
         (static_cast<double>(windows) + 2.0 * a);
}

double HistoryWindowPredictor::predict_occurrences(
    const PredictionQuery& q) const {
  std::size_t windows = 0;
  std::size_t occurrences = 0;
  for_each_history_window(q, [&](trace::MachineId m, sim::SimTime w_start) {
    ++windows;
    occurrences += index().count_starts_in(m, w_start, w_start + q.length);
  });
  if (windows == 0) return 0.0;
  return static_cast<double>(occurrences) / static_cast<double>(windows);
}

}  // namespace fgcs::predict

// Renewal / semi-Markov predictor over availability-interval lengths.
//
// Figure 6 shows interval-length distributions differ by day class; this
// predictor builds the empirical interval-length distribution per day
// class from history, then answers a query at availability age `a` with
// the conditional survival  P(L > a + w | L > a)  — the classic
// "remaining lifetime" estimate. Expected occurrences use the renewal
// approximation w / E[L].
#pragma once

#include "fgcs/predict/predictor.hpp"

namespace fgcs::predict {

struct SemiMarkovConfig {
  /// Minimum history samples required before trusting the conditional
  /// survival estimate; below this, fall back to the prior availability.
  std::size_t min_samples = 12;
  /// Prior P(available) used when history is too thin.
  double prior_availability = 0.7;
};

class SemiMarkovPredictor : public AvailabilityPredictor {
 public:
  explicit SemiMarkovPredictor(SemiMarkovConfig config = {});

  std::string name() const override { return "semi-markov"; }

  double predict_availability(const PredictionQuery& q) const override;
  double predict_occurrences(const PredictionQuery& q) const override;

 private:
  /// Availability-interval lengths (hours) of the query's day class, from
  /// episodes strictly before `before` on the query's machine.
  std::vector<double> interval_samples(const PredictionQuery& q) const;

  SemiMarkovConfig config_;
};

}  // namespace fgcs::predict

// Renewal / semi-Markov predictor over availability-interval lengths.
//
// Figure 6 shows interval-length distributions differ by day class; this
// predictor builds the empirical interval-length distribution per day
// class from history, then answers a query at availability age `a` with
// the conditional survival  P(L > a + w | L > a)  — the classic
// "remaining lifetime" estimate. Expected occurrences use the renewal
// approximation w / E[L].
#pragma once

#include <span>

#include "fgcs/predict/predictor.hpp"

namespace fgcs::predict {

struct SemiMarkovConfig {
  /// Minimum history samples required before trusting the conditional
  /// survival estimate; below this, fall back to the prior availability.
  std::size_t min_samples = 12;
  /// Prior P(available) used when history is too thin.
  double prior_availability = 0.7;
};

// -- incremental-update core -------------------------------------------------
//
// The estimate itself is a pure function of (sorted gap lengths, age,
// window, config). Both the batch predictor below and the online
// fgcs::serve feed — which maintains the sorted sample vector
// incrementally, one episode at a time — evaluate these exact functions,
// so the two paths agree bit-for-bit (the serve-incremental diff oracle
// enforces this over hundreds of seeds).

/// Conditional survival P(L > age + window | L > age) over the
/// ascending-sorted availability-gap lengths `sorted_h` (hours), with the
/// config's thin-history prior and exhausted-history pessimism applied.
double conditional_availability(std::span<const double> sorted_h,
                                double age_h, double window_h,
                                const SemiMarkovConfig& config);

/// Renewal occurrence estimate window / E[L]. `sum_h` must be the
/// episode-time-order sum of the same `count` gap lengths — summation
/// order matters for bit-identity with a batch recomputation.
double renewal_occurrences(double sum_h, std::size_t count, double window_h);

class SemiMarkovPredictor : public AvailabilityPredictor {
 public:
  explicit SemiMarkovPredictor(SemiMarkovConfig config = {});

  std::string name() const override { return "semi-markov"; }

  double predict_availability(const PredictionQuery& q) const override;
  double predict_occurrences(const PredictionQuery& q) const override;

 private:
  /// Availability-interval lengths (hours) of the query's day class, from
  /// episodes strictly before `before` on the query's machine.
  std::vector<double> interval_samples(const PredictionQuery& q) const;

  SemiMarkovConfig config_;
};

}  // namespace fgcs::predict

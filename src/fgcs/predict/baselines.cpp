#include "fgcs/predict/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/util/error.hpp"

namespace fgcs::predict {

AlwaysAvailablePredictor::AlwaysAvailablePredictor(double p) : p_(p) {
  fgcs::require(p >= 0.0 && p <= 1.0, "p must be a probability");
}

RecentRatePredictor::RecentRatePredictor(sim::SimDuration lookback)
    : lookback_(lookback) {
  fgcs::require(lookback > sim::SimDuration::zero(), "lookback must be > 0");
}

double RecentRatePredictor::rate_per_hour(const PredictionQuery& q) const {
  const sim::SimTime from = q.start - lookback_;
  const auto n = index().count_starts_in(q.machine, from, q.start);
  return static_cast<double>(n) / lookback_.as_hours();
}

double RecentRatePredictor::predict_availability(
    const PredictionQuery& q) const {
  return std::exp(-rate_per_hour(q) * q.length.as_hours());
}

double RecentRatePredictor::predict_occurrences(
    const PredictionQuery& q) const {
  return rate_per_hour(q) * q.length.as_hours();
}

double SaturatingCounterPredictor::predict_availability(
    const PredictionQuery& q) const {
  const auto& cal = calendar();
  const int query_day = cal.day_index(q.start);
  const bool want_weekend = cal.is_weekend_day(query_day);
  const sim::SimDuration offset = q.start - cal.day_start(query_day);

  // Replay the counter over up to the last 6 same-class days, oldest
  // first, starting from weakly-available (2 of 0..3).
  int counter = 2;
  std::vector<bool> outcomes;
  for (int d = query_day - 1; d >= 0 && outcomes.size() < 6; --d) {
    if (cal.is_weekend_day(d) != want_weekend) continue;
    const sim::SimTime w_start = cal.day_start(d) + offset;
    if (w_start + q.length > q.start) continue;
    outcomes.push_back(
        !index().any_overlap(q.machine, w_start, w_start + q.length));
  }
  for (auto it = outcomes.rbegin(); it != outcomes.rend(); ++it) {
    counter = *it ? std::min(3, counter + 1) : std::max(0, counter - 1);
  }
  return counter >= 2 ? 1.0 : 0.0;
}

double SaturatingCounterPredictor::predict_occurrences(
    const PredictionQuery& q) const {
  // The counter is a classifier; expose a coarse count estimate.
  return predict_availability(q) >= 0.5 ? 0.0 : 1.0;
}

}  // namespace fgcs::predict

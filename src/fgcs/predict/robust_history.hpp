// Robust history-window predictor — the paper's "aggressive" variant:
//
//   "An aggressive prediction algorithm would accommodate the small
//    deviations of resource availability among related time windows. One
//    approach is to use statistics on history trace to alleviate the
//    effects of 'irregular' data." (§5.3)
//
// Two robustness mechanisms on top of the plain history-window scheme:
//   * recency weighting — window i days back gets weight discount^rank,
//     so a schedule shift (new semester, new lab hours) washes out fast;
//   * trimming — with enough history, the most irregular windows (the
//     holiday that behaved like a weekend, the one-off outage) are
//     dropped from the occurrence estimate.
#pragma once

#include "fgcs/predict/predictor.hpp"

namespace fgcs::predict {

struct RobustHistoryConfig {
  /// Same-class days consulted (more than the plain predictor; the
  /// weighting keeps old days from dominating).
  int history_days = 12;
  /// Geometric recency discount per history rank, in (0, 1].
  double discount = 0.85;
  /// Trim the single most extreme window from each end of the occurrence
  /// sample when at least this many windows are available.
  std::size_t trim_threshold = 6;
  /// Laplace-style prior weight toward availability 0.5.
  double prior_weight = 1.0;
};

class RobustHistoryPredictor : public AvailabilityPredictor {
 public:
  explicit RobustHistoryPredictor(RobustHistoryConfig config = {});

  std::string name() const override;

  double predict_availability(const PredictionQuery& q) const override;
  double predict_occurrences(const PredictionQuery& q) const override;

 private:
  /// Same-clock windows on previous same-class days, most recent first.
  std::vector<sim::SimTime> history_windows(const PredictionQuery& q) const;

  RobustHistoryConfig config_;
};

}  // namespace fgcs::predict

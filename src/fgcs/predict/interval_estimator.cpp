#include "fgcs/predict/interval_estimator.hpp"

#include "fgcs/util/error.hpp"

namespace fgcs::predict {

IntervalLengthEstimator::IntervalLengthEstimator(
    const trace::TraceIndex& index, const trace::TraceCalendar& calendar,
    Config config)
    : index_(index), calendar_(calendar), config_(config) {
  fgcs::require(config_.fallback_hours >= 0.0,
                "fallback_hours must be >= 0");
}

std::vector<double> IntervalLengthEstimator::samples(trace::MachineId m,
                                                     sim::SimTime t) const {
  const auto& episodes = index_.machine(m);
  const bool want_weekend = calendar_.is_weekend(t);
  std::vector<double> lengths;
  for (std::size_t i = 1; i < episodes.size(); ++i) {
    if (episodes[i].start >= t) break;
    const sim::SimTime gap_start = episodes[i - 1].end;
    const sim::SimTime gap_end = episodes[i].start;
    if (gap_end <= gap_start) continue;
    if (calendar_.is_weekend(gap_start) != want_weekend) continue;
    lengths.push_back((gap_end - gap_start).as_hours());
  }
  return lengths;
}

double IntervalLengthEstimator::expected_interval_hours(
    trace::MachineId m, sim::SimTime t) const {
  const auto lengths = samples(m, t);
  if (lengths.size() < config_.min_samples) return config_.fallback_hours;
  double sum = 0.0;
  for (double l : lengths) sum += l;
  return sum / static_cast<double>(lengths.size());
}

double IntervalLengthEstimator::expected_remaining_hours(
    trace::MachineId m, sim::SimTime t) const {
  bool inside = false;
  const sim::SimTime last_end = index_.last_end_before(m, t, &inside);
  if (inside) return 0.0;

  const double age_h = (t - last_end).as_hours();
  const auto lengths = samples(m, t);
  if (lengths.size() < config_.min_samples) {
    // Memoryless fallback.
    return config_.fallback_hours;
  }
  // Mean residual life: E[L - a | L > a].
  double sum = 0.0;
  std::size_t n = 0;
  for (double l : lengths) {
    if (l > age_h) {
      sum += l - age_h;
      ++n;
    }
  }
  if (n == 0) {
    // Older than anything observed; assume the tail behaves like the
    // shortest meaningful remainder.
    return 0.25;
  }
  return sum / static_cast<double>(n);
}

}  // namespace fgcs::predict

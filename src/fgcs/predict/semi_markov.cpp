#include "fgcs/predict/semi_markov.hpp"

#include <algorithm>

#include "fgcs/stats/ecdf.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {

SemiMarkovPredictor::SemiMarkovPredictor(SemiMarkovConfig config)
    : config_(config) {
  fgcs::require(config_.prior_availability >= 0.0 &&
                    config_.prior_availability <= 1.0,
                "prior_availability must be a probability");
}

std::vector<double> SemiMarkovPredictor::interval_samples(
    const PredictionQuery& q) const {
  const auto& episodes = index().machine(q.machine);
  const bool want_weekend = calendar().is_weekend(q.start);
  std::vector<double> lengths_h;
  for (std::size_t i = 1; i < episodes.size(); ++i) {
    if (episodes[i].start >= q.start) break;  // history only
    const sim::SimTime gap_start = episodes[i - 1].end;
    const sim::SimTime gap_end = episodes[i].start;
    if (gap_end <= gap_start) continue;
    if (calendar().is_weekend(gap_start) != want_weekend) continue;
    lengths_h.push_back((gap_end - gap_start).as_hours());
  }
  return lengths_h;
}

double conditional_availability(std::span<const double> sorted_h,
                                double age_h, double window_h,
                                const SemiMarkovConfig& config) {
  if (sorted_h.size() < config.min_samples) {
    return config.prior_availability;
  }
  const double surv_age = 1.0 - stats::ecdf_at(sorted_h, age_h);
  const double surv_horizon = 1.0 - stats::ecdf_at(sorted_h, age_h + window_h);
  if (surv_age <= 0.0) {
    // Interval already older than anything in history; be pessimistic but
    // not absolute.
    return std::min(config.prior_availability, 0.2);
  }
  return std::clamp(surv_horizon / surv_age, 0.0, 1.0);
}

double renewal_occurrences(double sum_h, std::size_t count, double window_h) {
  if (count == 0) return 0.0;
  const double mean_h = sum_h / static_cast<double>(count);
  if (mean_h <= 0.0) return 0.0;
  return window_h / mean_h;
}

double SemiMarkovPredictor::predict_availability(
    const PredictionQuery& q) const {
  bool inside = false;
  const sim::SimTime last_end = index().last_end_before(q.machine, q.start,
                                                        &inside);
  if (inside) return 0.0;  // the machine is down right now

  auto lengths = interval_samples(q);
  std::sort(lengths.begin(), lengths.end());
  const double age_h = (q.start - last_end).as_hours();
  return conditional_availability(lengths, age_h, q.length.as_hours(),
                                  config_);
}

double SemiMarkovPredictor::predict_occurrences(
    const PredictionQuery& q) const {
  const auto lengths = interval_samples(q);
  double sum = 0.0;
  for (double l : lengths) sum += l;
  return renewal_occurrences(sum, lengths.size(), q.length.as_hours());
}

}  // namespace fgcs::predict

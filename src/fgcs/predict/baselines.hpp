// Baseline predictors the history-window approach is compared against.
#pragma once

#include "fgcs/predict/predictor.hpp"

namespace fgcs::predict {

/// Predicts "available" with a fixed probability regardless of history —
/// the failure-oblivious scheduler the paper's related work improves on.
class AlwaysAvailablePredictor : public AvailabilityPredictor {
 public:
  explicit AlwaysAvailablePredictor(double p = 1.0);
  std::string name() const override { return "always-available"; }
  double predict_availability(const PredictionQuery&) const override {
    return p_;
  }
  double predict_occurrences(const PredictionQuery&) const override {
    return 0.0;
  }

 private:
  double p_;
};

/// Estimates a constant failure rate from a trailing observation window
/// and assumes Poisson arrivals: P(avail) = exp(-rate * w). Captures "how
/// busy has this machine been lately" without any daily-pattern knowledge.
class RecentRatePredictor : public AvailabilityPredictor {
 public:
  explicit RecentRatePredictor(
      sim::SimDuration lookback = sim::SimDuration::hours(24));
  std::string name() const override { return "recent-rate"; }
  double predict_availability(const PredictionQuery& q) const override;
  double predict_occurrences(const PredictionQuery& q) const override;

 private:
  double rate_per_hour(const PredictionQuery& q) const;
  sim::SimDuration lookback_;
};

/// Two-bit saturating counter over the most recent same-clock windows
/// (branch-predictor style): counts up on failure-free windows, down on
/// failed ones, predicts by the counter's high bit.
class SaturatingCounterPredictor : public AvailabilityPredictor {
 public:
  SaturatingCounterPredictor() = default;
  std::string name() const override { return "saturating-counter"; }
  double predict_availability(const PredictionQuery& q) const override;
  double predict_occurrences(const PredictionQuery& q) const override;
};

}  // namespace fgcs::predict

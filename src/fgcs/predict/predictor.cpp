#include "fgcs/predict/predictor.hpp"

#include "fgcs/util/error.hpp"

namespace fgcs::predict {

const trace::TraceIndex& AvailabilityPredictor::index() const {
  FGCS_ASSERT(index_ != nullptr);
  return *index_;
}

const trace::TraceCalendar& AvailabilityPredictor::calendar() const {
  FGCS_ASSERT(calendar_ != nullptr);
  return *calendar_;
}

}  // namespace fgcs::predict

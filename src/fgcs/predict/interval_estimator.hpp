// Availability-interval length estimation (§5.2):
//
//   "Facilities to predict such interval lengths provide the knowledge of
//    how much computation power an FGCS system can deliver without
//    interruption."
//
// Estimates are empirical, per day class (Figure 6 shows the two classes
// differ), and condition on the current interval's age via the
// mean-residual-life of the history distribution.
#pragma once

#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/index.hpp"

namespace fgcs::predict {

class IntervalLengthEstimator {
 public:
  struct Config {
    /// Minimum history intervals before trusting the empirical estimate.
    std::size_t min_samples = 12;
    /// Returned when history is too thin.
    double fallback_hours = 3.0;
  };

  IntervalLengthEstimator(const trace::TraceIndex& index,
                          const trace::TraceCalendar& calendar)
      : IntervalLengthEstimator(index, calendar, Config{}) {}
  IntervalLengthEstimator(const trace::TraceIndex& index,
                          const trace::TraceCalendar& calendar,
                          Config config);

  /// Unconditional mean availability-interval length (hours) for the day
  /// class of `t` on machine `m`, from intervals observed before `t`.
  double expected_interval_hours(trace::MachineId m, sim::SimTime t) const;

  /// Expected *remaining* availability at `t` (hours): the mean residual
  /// life of the interval distribution at the current interval's age.
  /// Returns 0 when the machine is inside an unavailability episode.
  double expected_remaining_hours(trace::MachineId m, sim::SimTime t) const;

 private:
  /// Day-class interval lengths (hours) on machine m strictly before `t`.
  std::vector<double> samples(trace::MachineId m, sim::SimTime t) const;

  const trace::TraceIndex& index_;
  const trace::TraceCalendar& calendar_;
  Config config_;
};

}  // namespace fgcs::predict

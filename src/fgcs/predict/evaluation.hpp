// Rolling evaluation of availability predictors on a trace.
//
// For each machine and each stride-spaced window start in the evaluation
// period (skipping instants where the machine is already down), the
// predictor estimates P(available through window); ground truth is
// whether any episode overlaps the window. Reported metrics:
//
//   * Brier score (mean squared probability error; lower is better)
//   * accuracy / TPR / FPR at a decision threshold
//   * MAE of the expected-occurrence estimate vs the actual count
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fgcs/predict/predictor.hpp"

namespace fgcs::predict {

struct EvaluationConfig {
  /// Evaluation period (queries start in [begin, end - window]).
  sim::SimTime begin;
  sim::SimTime end;
  /// Prediction window length (the guest job's estimated run time).
  sim::SimDuration window = sim::SimDuration::hours(2);
  /// Spacing between query starts.
  sim::SimDuration stride = sim::SimDuration::minutes(30);
  /// Classification threshold on predicted availability.
  double decision_threshold = 0.5;

  /// Evaluate machines in parallel on the global pool. Bit-identical to
  /// the sequential path: each machine's queries accumulate into their
  /// own partial sums, merged in machine order either way (the diff
  /// oracle "prediction-parallel" sweeps this equivalence). Requires the
  /// predictor's const query methods to be thread-safe after attach() —
  /// true for every predictor in the repo (none keeps mutable caches).
  bool parallel = true;

  void validate() const;
};

struct EvaluationResult {
  std::string predictor;
  std::size_t queries = 0;
  double brier = 0.0;
  double accuracy = 0.0;
  double true_positive_rate = 0.0;   // predicted-available | was available
  double false_positive_rate = 0.0;  // predicted-available | was unavailable
  double occurrence_mae = 0.0;
  double base_availability = 0.0;    // fraction of windows truly available

  /// Reliability diagram: queries bucketed by predicted probability into
  /// ten deciles ([0,0.1), ..., [0.9,1.0]); a well-calibrated predictor
  /// has observed ~= mean_predicted in every non-empty bucket.
  struct ReliabilityBucket {
    std::size_t count = 0;
    double mean_predicted = 0.0;
    double observed_available = 0.0;
  };
  std::array<ReliabilityBucket, 10> reliability{};

  /// Expected calibration error: the count-weighted mean of
  /// |observed - mean_predicted| over buckets.
  double expected_calibration_error() const;
};

/// Runs the rolling evaluation. The predictor is attach()ed to the trace
/// inside; per the predictor contract it must only use records before each
/// query's start.
EvaluationResult evaluate_predictor(AvailabilityPredictor& predictor,
                                    const trace::TraceIndex& index,
                                    const trace::TraceCalendar& calendar,
                                    const EvaluationConfig& config);

}  // namespace fgcs::predict

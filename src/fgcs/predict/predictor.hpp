// Availability prediction interface (the paper's stated future work, §6).
//
// A predictor answers: given everything observed strictly before a query's
// start time, how likely is machine m to stay available throughout
// [start, start + length), and how many unavailability occurrences are
// expected in that window?
//
// Contract: predictors receive the full trace via attach() but MUST only
// consult records with start < query.start — the evaluation harness relies
// on this to emulate online prediction without per-query retraining.
#pragma once

#include <memory>
#include <string>

#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::predict {

struct PredictionQuery {
  trace::MachineId machine = 0;
  sim::SimTime start;
  sim::SimDuration length;
};

class AvailabilityPredictor {
 public:
  virtual ~AvailabilityPredictor() = default;

  virtual std::string name() const = 0;

  /// Binds the predictor to a trace (history source) and calendar.
  virtual void attach(const trace::TraceIndex& index,
                      const trace::TraceCalendar& calendar) {
    index_ = &index;
    calendar_ = &calendar;
  }

  /// P(no unavailability occurrence overlaps the window), in [0, 1].
  virtual double predict_availability(const PredictionQuery& q) const = 0;

  /// Expected number of occurrences starting within the window.
  virtual double predict_occurrences(const PredictionQuery& q) const = 0;

 protected:
  const trace::TraceIndex& index() const;
  const trace::TraceCalendar& calendar() const;

 private:
  const trace::TraceIndex* index_ = nullptr;
  const trace::TraceCalendar* calendar_ = nullptr;
};

}  // namespace fgcs::predict

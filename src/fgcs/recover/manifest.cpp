#include "fgcs/recover/manifest.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::recover {

namespace {

constexpr char kHeaderLine[] = "fgcs-checkpoint v1";
// Mixed into the fingerprint; bump when the manifest or shard-state
// format changes so old checkpoints stop matching instead of misparsing.
constexpr std::uint64_t kFormatVersion = 1;
// The workload model's per-machine substream tag (load_model.cpp). The
// constant is duplicated deliberately: the manifest's rng field must
// track what the *simulation* derives, so if the derivation scheme ever
// changes, recomputed keys diverge from checkpointed ones and resume
// refuses to splice stale results.
constexpr std::uint64_t kLoadTag = 0x4C4F4144;  // "LOAD"

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // SplitMix64 finalizer over a running combine — order-sensitive, cheap,
  // and stable across platforms.
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t mix_bytes(std::uint64_t h, const std::string& s) {
  h = mix(h, s.size());
  for (const unsigned char c : s) h = mix(h, c);
  return h;
}

}  // namespace

std::string manifest_path(const std::string& dir) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "MANIFEST";
  return path;
}

std::uint64_t fingerprint(const SweepIdentity& id) {
  std::uint64_t h = mix(0x46474353u /* "FGCS" */, kFormatVersion);
  h = mix(h, id.machines);
  h = mix(h, static_cast<std::uint64_t>(id.days));
  h = mix(h, static_cast<std::uint64_t>(id.start_dow));
  h = mix(h, id.seed);
  h = mix(h, id.shard_machines);
  h = mix_bytes(h, id.fault_plan);
  h = mix(h, id.metrics ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(id.metrics_resolution_us));
  const auto mix_double = [&](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    h = mix(h, bits);
  };
  mix_double(id.ram_mb);
  mix_double(id.kernel_mb);
  mix_double(id.th1);
  mix_double(id.th2);
  h = mix(h, static_cast<std::uint64_t>(id.sample_period_us));
  return h;
}

std::uint64_t shard_rng_key(std::uint64_t seed, std::uint32_t first_machine) {
  return util::RngStream::derive(seed, {kLoadTag, first_machine, 0});
}

std::string Manifest::serialize() const {
  std::string out = kHeaderLine;
  out += '\n';
  char line[512];
  std::snprintf(line, sizeof line, "fingerprint %016" PRIx64 "\n", fingerprint);
  out += line;
  std::snprintf(line, sizeof line, "shard_count %" PRIu64 "\n", shard_count);
  out += line;
  for (const auto& s : shards) {
    std::snprintf(line, sizeof line,
                  "shard %" PRIu64 " %s %s %" PRIu32 " %" PRIu32 " %" PRIu64
                  " %08" PRIx32 " %" PRIu64 " %08" PRIx32 " %016" PRIx64 "\n",
                  s.shard, s.segment_name.c_str(), s.state_name.c_str(),
                  s.first_machine, s.machine_count, s.records, s.segment_crc,
                  s.segment_bytes, s.state_crc, s.rng_key);
    out += line;
  }
  std::snprintf(line, sizeof line, "crc %08x\n",
                util::crc32(out.data(), out.size()));
  out += line;
  return out;
}

Manifest Manifest::parse(const std::string& text, const std::string& source) {
  // Split off the trailing "crc <hex8>\n" line and verify it first — a
  // manifest that fails its own checksum is not worth field-level errors.
  const auto fail = [&](const std::string& why) -> IoError {
    return IoError(source + ": " + why);
  };
  if (text.empty()) throw fail("empty checkpoint manifest");
  std::size_t crc_line = text.rfind("crc ", text.size() - 1);
  // The crc line must start a line (offset 0 would mean no content).
  while (crc_line != std::string::npos && crc_line != 0 &&
         text[crc_line - 1] != '\n') {
    crc_line = text.rfind("crc ", crc_line - 1);
  }
  if (crc_line == std::string::npos || crc_line == 0) {
    throw fail("checkpoint manifest has no trailing crc line");
  }
  unsigned long stored = 0;
  if (std::sscanf(text.c_str() + crc_line, "crc %08lx", &stored) != 1) {
    throw fail("checkpoint manifest crc line is malformed");
  }
  const std::uint32_t computed = util::crc32(text.data(), crc_line);
  if (computed != static_cast<std::uint32_t>(stored)) {
    throw fail("checkpoint manifest failed its checksum (stored " +
               std::to_string(stored) + ", computed " +
               std::to_string(computed) + ")");
  }

  Manifest m;
  std::istringstream in(text.substr(0, crc_line));
  std::string line;
  if (!std::getline(in, line) || line != kHeaderLine) {
    throw fail("not an fgcs checkpoint manifest (bad header line)");
  }
  if (!std::getline(in, line) ||
      std::sscanf(line.c_str(), "fingerprint %16" SCNx64, &m.fingerprint) !=
          1) {
    throw fail("checkpoint manifest missing fingerprint");
  }
  if (!std::getline(in, line) ||
      std::sscanf(line.c_str(), "shard_count %" SCNu64, &m.shard_count) != 1) {
    throw fail("checkpoint manifest missing shard_count");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ShardCheckpoint s;
    char segment[128] = {0};
    char state[128] = {0};
    if (std::sscanf(line.c_str(),
                    "shard %" SCNu64 " %127s %127s %" SCNu32 " %" SCNu32
                    " %" SCNu64 " %8" SCNx32 " %" SCNu64 " %8" SCNx32
                    " %16" SCNx64,
                    &s.shard, segment, state, &s.first_machine,
                    &s.machine_count, &s.records, &s.segment_crc,
                    &s.segment_bytes, &s.state_crc, &s.rng_key) != 10) {
      throw fail("checkpoint manifest has a malformed shard line: " + line);
    }
    s.segment_name = segment;
    s.state_name = state;
    if (s.shard >= m.shard_count) {
      throw fail("checkpoint manifest shard index " + std::to_string(s.shard) +
                 " exceeds shard_count " + std::to_string(m.shard_count));
    }
    if (s.machine_count == 0) {
      throw fail("checkpoint manifest shard " + std::to_string(s.shard) +
                 " claims zero machines");
    }
    m.shards.push_back(std::move(s));
  }
  std::sort(m.shards.begin(), m.shards.end(),
            [](const auto& a, const auto& b) { return a.shard < b.shard; });
  for (std::size_t i = 1; i < m.shards.size(); ++i) {
    if (m.shards[i].shard == m.shards[i - 1].shard) {
      throw fail("checkpoint manifest lists shard " +
                 std::to_string(m.shards[i].shard) + " twice");
    }
  }
  return m;
}

CheckpointLog::CheckpointLog(std::string dir, std::uint64_t fingerprint,
                             std::uint64_t shard_count)
    : dir_(std::move(dir)) {
  manifest_.fingerprint = fingerprint;
  manifest_.shard_count = shard_count;
}

void CheckpointLog::preload(const std::vector<ShardCheckpoint>& shards) {
  const std::lock_guard<std::mutex> lock(mutex_);
  manifest_.shards = shards;
  std::sort(manifest_.shards.begin(), manifest_.shards.end(),
            [](const auto& a, const auto& b) { return a.shard < b.shard; });
}

void CheckpointLog::commit(const ShardCheckpoint& shard) {
  // The shard's segment/state files are sealed and durable by the time a
  // worker gets here; a kill between here and the rename below loses only
  // the manifest *claim*, so resume re-runs the shard — correct, just
  // wasteful.
  util::crashpoint(util::CrashPoint::kShardCommit);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto pos = std::lower_bound(
      manifest_.shards.begin(), manifest_.shards.end(), shard.shard,
      [](const ShardCheckpoint& s, std::uint64_t idx) { return s.shard < idx; });
  fgcs::require(pos == manifest_.shards.end() || pos->shard != shard.shard,
                "checkpoint commit for an already-committed shard");
  manifest_.shards.insert(pos, shard);
  const std::string text = manifest_.serialize();
  // Intermediate rewrites are rename-only below kBlock: the atomic
  // rename fully protects against process death (page cache survives
  // SIGKILL), and per-shard fsync pairs would dominate short sweeps —
  // sync() makes the final state durable once at the end. kBlock, the
  // paranoid level, hardens every rewrite against OS crash too.
  const auto level = util::durability_level() >= util::Durability::kBlock
                         ? util::Durability::kBlock
                         : util::Durability::kNone;
  util::atomic_replace_file(manifest_path(dir_), text.data(), text.size(),
                            level);
  util::crashpoint(util::CrashPoint::kManifestWrite);
}

void CheckpointLog::sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (manifest_.shards.empty()) return;
  const std::string path = manifest_path(dir_);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw IoError("cannot open checkpoint manifest: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw IoError("fsync failed: " + path);
  util::fsync_parent_dir(path);
}

Manifest CheckpointLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return manifest_;
}

ResumePlan plan_resume(const std::string& dir, std::uint64_t fingerprint,
                       std::uint64_t shard_count, std::uint64_t seed) {
  ResumePlan plan;
  const std::string path = manifest_path(dir);
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      if (errno == ENOENT) return plan;  // fresh start
      throw IoError("cannot open checkpoint manifest: " + path);
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  const Manifest m = Manifest::parse(text, path);
  if (m.fingerprint != fingerprint) {
    throw IoError(path +
                  ": checkpoint belongs to a different sweep configuration "
                  "(fingerprint mismatch) — refusing to resume");
  }
  if (m.shard_count != shard_count) {
    throw IoError(path + ": checkpoint shard count " +
                  std::to_string(m.shard_count) +
                  " does not match this sweep's " +
                  std::to_string(shard_count));
  }

  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& s : m.shards) {
    if (s.rng_key != shard_rng_key(seed, s.first_machine)) {
      plan.dropped.push_back("shard " + std::to_string(s.shard) +
                             ": rng substream derivation changed since the "
                             "checkpoint");
      continue;
    }
    const std::string seg_path = prefix + s.segment_name;
    struct ::stat st{};
    if (::stat(seg_path.c_str(), &st) != 0) {
      plan.dropped.push_back("shard " + std::to_string(s.shard) +
                             ": segment missing (" + s.segment_name + ")");
      continue;
    }
    if (static_cast<std::uint64_t>(st.st_size) != s.segment_bytes) {
      plan.dropped.push_back("shard " + std::to_string(s.shard) +
                             ": segment resized");
      continue;
    }
    if (util::file_crc32(seg_path) != s.segment_crc) {
      plan.dropped.push_back("shard " + std::to_string(s.shard) +
                             ": segment failed its checksum");
      continue;
    }
    const std::string state_path = prefix + s.state_name;
    if (::stat(state_path.c_str(), &st) != 0) {
      plan.dropped.push_back("shard " + std::to_string(s.shard) +
                             ": state blob missing (" + s.state_name + ")");
      continue;
    }
    if (util::file_crc32(state_path) != s.state_crc) {
      plan.dropped.push_back("shard " + std::to_string(s.shard) +
                             ": state blob failed its checksum");
      continue;
    }
    plan.valid.push_back(s);
  }
  return plan;
}

}  // namespace fgcs::recover

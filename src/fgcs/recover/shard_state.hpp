// Per-shard observability state blobs for checkpointed sweeps.
//
// A fleet shard's *trace* records live in its sealed v2 segment, but its
// obs side effects — the CounterShard totals and (with telemetry on) the
// TimeSeriesShard bins — exist only in memory. A resumed sweep that
// skipped a completed shard would report zero counters for it and write a
// metrics segment missing its bins, breaking the bit-identical-resume
// guarantee. So each shard commit also persists this blob:
//
//   magic "FGCSSHD1"
//   u32 counter_bytes (= sizeof(obs::CounterShard), layout guard)
//   u64 records
//   u64 ts_bytes (0 = sweep ran without telemetry)
//   counter_bytes of CounterShard (trivially-copyable POD)
//   ts_bytes of TimeSeriesShard::save_bins() output
//   u32 CRC-32 of everything above
//
// Written via util::atomic_replace_file but never fsynced: the manifest
// records the blob's CRC and plan_resume() re-validates it, so a blob
// lost to an OS crash re-runs its shard instead of corrupting the
// resume. Validated (magic, sizes, CRC) on read. A CounterShard layout
// change shifts counter_bytes and invalidates old blobs instead of
// reinterpreting them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fgcs/obs/observer.hpp"

namespace fgcs::recover {

/// Everything a resumed run must restore for a skipped shard, beyond the
/// trace segment itself.
struct ShardState {
  obs::CounterShard counters;
  std::uint64_t records = 0;
  /// TimeSeriesShard::save_bins() image; empty when the sweep collects no
  /// metrics.
  std::vector<unsigned char> ts_bins;
};

/// "shard-NNNN.state" — the blob's file name for shard `shard`.
std::string shard_state_name(std::size_t shard);

/// Serializes and atomically writes the blob. Returns the written file's
/// content CRC (what the manifest records as state_crc).
std::uint32_t write_shard_state(const std::string& path,
                                const ShardState& state);

/// Reads and validates a blob. Throws IoError on a missing file, bad
/// magic, size mismatch, or CRC failure.
ShardState read_shard_state(const std::string& path);

}  // namespace fgcs::recover

#include "fgcs/recover/shard_state.hpp"

#include <cstdio>
#include <cstring>
#include <type_traits>

#include "fgcs/util/binio.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/io.hpp"

namespace fgcs::recover {

namespace {

constexpr char kMagic[8] = {'F', 'G', 'C', 'S', 'S', 'H', 'D', '1'};
constexpr std::size_t kFixedBytes = 8 + 4 + 8 + 8;  // magic + sizes + records

static_assert(std::is_trivially_copyable_v<obs::CounterShard>,
              "CounterShard is memcpy'd into shard-state blobs");

}  // namespace

std::string shard_state_name(std::size_t shard) {
  char name[32];
  std::snprintf(name, sizeof name, "shard-%04zu.state", shard);
  return name;
}

std::uint32_t write_shard_state(const std::string& path,
                                const ShardState& state) {
  std::vector<unsigned char> buf;
  buf.reserve(kFixedBytes + sizeof(obs::CounterShard) + state.ts_bins.size() +
              4);
  buf.insert(buf.end(), kMagic, kMagic + sizeof kMagic);
  util::store<std::uint32_t>(
      buf, static_cast<std::uint32_t>(sizeof(obs::CounterShard)));
  util::store<std::uint64_t>(buf, state.records);
  util::store<std::uint64_t>(buf, state.ts_bins.size());
  const auto* counters =
      reinterpret_cast<const unsigned char*>(&state.counters);
  buf.insert(buf.end(), counters, counters + sizeof(obs::CounterShard));
  buf.insert(buf.end(), state.ts_bins.begin(), state.ts_bins.end());
  const std::uint32_t body_crc = util::crc32(buf.data(), buf.size());
  util::store<std::uint32_t>(buf, body_crc);
  // Deliberately no fsync (Durability::kNone) regardless of the policy
  // level: the manifest records this blob's CRC and plan_resume()
  // re-validates it, so a blob torn by an OS crash costs one re-run
  // shard, never wrong data. Skipping the two fsyncs (file + parent dir)
  // halves the per-shard-commit fsync count — the difference between
  // checkpointing being free and it dominating short sweeps.
  util::atomic_replace_file(path, buf.data(), buf.size(),
                            util::Durability::kNone);
  return util::crc32(buf.data(), buf.size());
}

ShardState read_shard_state(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open shard state: " + path);
  std::vector<unsigned char> buf;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);

  const auto fail = [&](const std::string& why) -> IoError {
    return IoError(path + ": " + why);
  };
  if (buf.size() < kFixedBytes + sizeof(obs::CounterShard) + 4) {
    throw fail("shard state blob too small");
  }
  if (std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0) {
    throw fail("not an fgcs shard state blob (bad magic)");
  }
  const std::uint32_t counter_bytes = util::load<std::uint32_t>(buf.data() + 8);
  if (counter_bytes != sizeof(obs::CounterShard)) {
    throw fail("shard state counter layout mismatch (blob " +
               std::to_string(counter_bytes) + " bytes, this build " +
               std::to_string(sizeof(obs::CounterShard)) + ")");
  }
  ShardState state;
  state.records = util::load<std::uint64_t>(buf.data() + 12);
  const std::uint64_t ts_bytes = util::load<std::uint64_t>(buf.data() + 20);
  const std::uint64_t expect =
      kFixedBytes + sizeof(obs::CounterShard) + ts_bytes + 4;
  if (buf.size() != expect) {
    throw fail("shard state blob size mismatch");
  }
  const std::size_t body = buf.size() - 4;
  const std::uint32_t stored = util::load<std::uint32_t>(buf.data() + body);
  const std::uint32_t computed = util::crc32(buf.data(), body);
  if (stored != computed) {
    throw fail("shard state blob failed its checksum");
  }
  std::memcpy(&state.counters, buf.data() + kFixedBytes,
              sizeof(obs::CounterShard));
  state.ts_bins.assign(
      buf.begin() + static_cast<std::ptrdiff_t>(kFixedBytes +
                                                sizeof(obs::CounterShard)),
      buf.begin() + static_cast<std::ptrdiff_t>(body));
  return state;
}

}  // namespace fgcs::recover

// Durable checkpoint manifest for resumable fleet sweeps.
//
// A checkpointed sweep leaves three kinds of files in its spill
// directory:
//
//   shard-NNNN.trc2    sealed v2 trace segments (one per finished shard)
//   shard-NNNN.state   per-shard obs state blobs (shard_state.hpp)
//   MANIFEST           this file: which shards completed, and how to
//                      prove it
//
// The manifest is a small line-oriented text file:
//
//   fgcs-checkpoint v1
//   fingerprint <hex16>          config identity (fingerprint())
//   shard_count <N>              total shards in the sweep
//   shard <idx> <segment> <state> <first> <count> <records>
//         ... <seg_crc8> <seg_bytes> <state_crc8> <rng16>  (one line)
//   ...                          one line per *completed* shard
//   crc <hex8>                   CRC-32 of every preceding byte
//
// Durability protocol: a shard's segment is fsynced and closed — and its
// state blob written, though deliberately not fsynced — before its
// manifest line exists (write-ahead of the data, behind of the claim),
// and every manifest rewrite goes through util::atomic_replace_file's
// temp + rename. Below Durability::kBlock the intermediate rewrites skip
// fsync entirely: atomic renames in the page cache survive any process
// death (SIGKILL included), which is the failure mode checkpointing
// targets, and CheckpointLog::sync() hardens the final manifest against
// OS crash once per sweep. kBlock additionally fsyncs every rewrite.
// A reader therefore always sees a manifest that is (a) internally
// consistent (trailing CRC) and (b) an *underestimate* of the work on
// disk, never an overestimate. Resume re-validates anyway: plan_resume()
// re-hashes every claimed file and silently drops shards whose segment or
// state blob is missing, resized, or corrupted — those shards simply run
// again. Only a manifest that lies about its identity (wrong fingerprint,
// alien format) is an error, because silently re-running a *different*
// sweep's directory would destroy data the user may want.
//
// The per-shard rng field pins the RNG substream derivation for the
// shard's first machine. Machine results depend on that derivation; if a
// future code change alters it, every old checkpoint's rng field stops
// matching and resume refuses to splice stale segments into a fresh run.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fgcs/util/io.hpp"

namespace fgcs::recover {

/// One completed shard's manifest entry.
struct ShardCheckpoint {
  std::uint64_t shard = 0;
  std::uint32_t first_machine = 0;
  std::uint32_t machine_count = 0;
  std::uint64_t records = 0;
  std::string segment_name;  // file name inside the checkpoint dir
  std::uint32_t segment_crc = 0;
  std::uint64_t segment_bytes = 0;
  std::string state_name;
  std::uint32_t state_crc = 0;
  std::uint64_t rng_key = 0;
};

/// The parsed/serializable manifest.
struct Manifest {
  std::uint64_t fingerprint = 0;
  std::uint64_t shard_count = 0;
  /// Completed shards, sorted by shard index.
  std::vector<ShardCheckpoint> shards;

  std::string serialize() const;

  /// Parses manifest text. Throws IoError (naming `source`) on anything
  /// malformed: bad header, bad trailing CRC, unparseable lines,
  /// duplicate or out-of-range shard indices.
  static Manifest parse(const std::string& text, const std::string& source);
};

/// The manifest's path inside a checkpoint directory.
std::string manifest_path(const std::string& dir);

/// The inputs that make two sweeps "the same work". Everything a machine
/// result depends on must be here: splicing a checkpoint into a run with
/// any of these changed would silently mix incompatible data.
struct SweepIdentity {
  std::uint32_t machines = 0;
  int days = 0;
  int start_dow = 0;
  std::uint64_t seed = 0;
  std::uint32_t shard_machines = 0;  // effective machines per shard
  std::string fault_plan;            // FaultPlan::str()
  bool metrics = false;
  std::int64_t metrics_resolution_us = 0;
  // Detector/machine knobs that change results. (The full workload
  // profile has no canonical serialization; runs that hand-edit profile
  // internals beyond these should use a fresh checkpoint directory.)
  double ram_mb = 0.0;
  double kernel_mb = 0.0;
  double th1 = 0.0;
  double th2 = 0.0;
  std::int64_t sample_period_us = 0;
};

/// Order-sensitive 64-bit hash of the identity (includes a format-version
/// salt, so manifest-format changes also invalidate old checkpoints).
std::uint64_t fingerprint(const SweepIdentity& id);

/// The RNG substream guard stored per shard: the derived seed of the
/// shard's first machine's first simulated day, mirroring the workload
/// model's derivation.
std::uint64_t shard_rng_key(std::uint64_t seed, std::uint32_t first_machine);

/// Serializes manifest rewrites during a sweep. Thread-safe: shard
/// workers commit() concurrently; each commit inserts the shard (in index
/// order) and atomically replaces the manifest on disk, so the on-disk
/// file always lists a prefix-consistent set of completed shards.
class CheckpointLog {
 public:
  CheckpointLog(std::string dir, std::uint64_t fingerprint,
                std::uint64_t shard_count);

  /// Seeds the log with already-validated checkpoints (resume), so the
  /// next rewrite preserves them.
  void preload(const std::vector<ShardCheckpoint>& shards);

  /// Records a completed shard and atomically rewrites the manifest.
  /// Below Durability::kBlock the rewrite is rename-only (no fsync):
  /// atomic renames fully protect against process death, and sync()
  /// hardens the final state against OS crash once per sweep instead of
  /// per shard. Crash-injection points: kShardCommit fires before the
  /// rewrite (the shard's files exist but its manifest line does not —
  /// resume must re-run it), kManifestWrite fires after the rename lands
  /// (the canonical clean resume point).
  void commit(const ShardCheckpoint& shard);

  /// Makes the manifest as last renamed durable against OS crash: fsyncs
  /// the file and its directory. Called once at the end of a sweep; a
  /// no-op when nothing was ever committed.
  void sync();

  /// The manifest as last written.
  Manifest snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::string dir_;
  Manifest manifest_;
};

/// What a resumed sweep can skip.
struct ResumePlan {
  /// Shards whose manifest entry, segment file, and state blob all
  /// validated — safe to splice into the merged result.
  std::vector<ShardCheckpoint> valid;
  /// Manifest entries dropped because a file was missing, resized, or
  /// failed its CRC — these shards run again. Human-readable reasons.
  std::vector<std::string> dropped;
};

/// Loads and validates `dir`'s checkpoint for a sweep with the given
/// identity. A missing manifest yields an empty plan (fresh start). A
/// manifest that exists but is malformed, carries a different
/// fingerprint, or disagrees on shard_count throws IoError — resuming a
/// different sweep's directory must be loud, not silent re-work. `seed`
/// re-derives each shard's rng key; entries whose stored key no longer
/// matches (the substream derivation changed since the checkpoint) are
/// dropped and re-run.
ResumePlan plan_resume(const std::string& dir, std::uint64_t fingerprint,
                       std::uint64_t shard_count, std::uint64_t seed);

}  // namespace fgcs::recover

// Figure 2 reproduction: reduction rate of host CPU usage vs host load and
// guest priority.
//
// The paper's conclusion: gradually decreasing guest priority does not
// help — only nice 19 meaningfully limits the guest, and for L_H > 50%
// nice 19 is *required*.
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Figure 2: host CPU reduction vs (L_H, guest priority) ==\n"
      "One host process; simulated Linux machine.\n\n");

  core::ContentionConfig config;
  const std::vector<double> lh_grid = {0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  const std::vector<int> nice_grid = {0, 5, 10, 15, 18, 19};

  const auto points = core::run_fig2(config, lh_grid, nice_grid);

  std::vector<std::string> headers = {"L_H"};
  for (int n : nice_grid) headers.push_back("nice " + std::to_string(n));
  util::TextTable table(headers);
  for (double lh : lh_grid) {
    std::vector<std::string> row = {util::format_double(lh, 1)};
    for (int n : nice_grid) {
      for (const auto& p : points) {
        if (p.lh_nominal == lh && p.guest_nice == n) {
          row.push_back(util::format_percent(p.reduction, 1));
        }
      }
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "expected shape: priorities 0..18 nearly identical; only nice 19\n"
      "reduces contention, and above L_H ~= 0.5 it is mandatory.\n");
  return 0;
}

// Figure 7 reproduction: unavailability occurrences during each hour of a
// day, weekdays and weekends, mean and range over days (§5.3).
//
// Key features to look for: the daytime rise after 10 AM, higher weekday
// than weekend counts, the 4-5 AM spike of exactly 20 (updatedb runs on
// every machine), and small deviations across same-class days (the
// predictability claim).
#include <cstdio>

#include <vector>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/stats/descriptive.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

namespace {

void print_panel(const core::HourlyPattern& pattern, bool weekend) {
  std::printf("%s (days: %d)\n", weekend ? "Weekends" : "Weekdays",
              weekend ? pattern.weekend_days : pattern.weekday_days);
  util::TextTable table({"Hour", "Mean", "Min", "Max", "Stddev"});
  const auto& rows = weekend ? pattern.weekend : pattern.weekday;
  for (int h = 0; h < 24; ++h) {
    const auto& row = rows[static_cast<std::size_t>(h)];
    table.add(std::to_string(h) + "-" + std::to_string(h + 1),
              util::format_double(row.mean, 1),
              util::format_double(row.min, 0),
              util::format_double(row.max, 0),
              util::format_double(row.stddev, 1));
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  std::printf(
      "== Figure 7: unavailability occurrences per hour of day ==\n"
      "Counts are testbed-wide (20 machines); episodes spanning several\n"
      "hours are counted in each hour (paper's counting rule).\n\n");

  core::TestbedConfig config;
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);
  const auto pattern = analyzer.hourly();

  print_panel(pattern, false);
  print_panel(pattern, true);

  std::printf(
      "4-5 AM weekday mean: %.1f (paper: 20 = all machines, updatedb)\n",
      pattern.weekday[4].mean);
  std::printf(
      "relative across-day deviation (weekdays): %.2f, (weekends): %.2f\n"
      "small values support history-window predictability (§5.3).\n",
      analyzer.hourly_relative_deviation(false),
      analyzer.hourly_relative_deviation(true));

  // §5.3: "the frequency of unavailability occurrences per hour is
  // tightly correlated with the host workloads during the corresponding
  // hour" — quantify with the Pearson correlation of mean hourly host
  // load vs mean hourly occurrence count.
  const auto capacity = core::run_capacity_profile(config);
  std::vector<double> load_wd, occ_wd, load_we, occ_we;
  for (std::size_t h = 0; h < 24; ++h) {
    load_wd.push_back(capacity.weekday_host_load[h]);
    occ_wd.push_back(pattern.weekday[h].mean);
    load_we.push_back(capacity.weekend_host_load[h]);
    occ_we.push_back(pattern.weekend[h].mean);
  }
  std::printf(
      "correlation(hourly host load, hourly occurrences): weekday %.2f, "
      "weekend %.2f\n(the paper's \"tightly correlated\" claim, §5.3)\n",
      stats::pearson(load_wd, occ_wd), stats::pearson(load_we, occ_we));
  return 0;
}

// Ablation: which scheduler mechanisms produce the paper's thresholds?
//
// The reproduction's central claim is that Th1/Th2 emerge from two
// mechanisms of generic Unix time-sharing: (a) sleeper credit protecting
// interactive host processes (drives Th1) and (b) the minimum timeslice
// granting a nice-19 guest a small share (drives Th2, via the base
// refill that sets the share ratio). This ablation sweeps both knobs and
// re-derives the thresholds from the Figure 1 experiment each time.
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

namespace {

core::Fig1Result sweep(os::SchedulerParams scheduler) {
  core::Fig1Config cfg;
  cfg.base.scheduler = std::move(scheduler);
  cfg.base.measure = sim::SimDuration::minutes(4);
  cfg.base.combinations = 2;
  cfg.max_group_size = 2;
  return core::run_fig1(cfg);
}

}  // namespace

int main() {
  std::printf(
      "== Ablation: scheduler design knobs vs calibrated thresholds ==\n"
      "Each row re-runs the Figure 1 sweep with one knob changed from the\n"
      "stock linux-2.4 profile (base refill 8 ticks, sleeper credit 2x).\n\n");

  util::TextTable table({"Variant", "Th1", "Th2", "reduction @ LH=1 (nice19)"});
  auto report = [&](const std::string& name, os::SchedulerParams params) {
    const auto result = sweep(std::move(params));
    table.add(name, util::format_double(result.th1, 2),
              util::format_double(result.th2, 2),
              util::format_percent(result.at(1.0, 1, 19).reduction, 1));
  };

  report("stock linux-2.4", os::SchedulerParams::linux_2_4());

  // (b) the nice-19 share: base refill sets ts(0)/ts(19), hence Th2.
  for (const double refill : {4.0, 12.0, 20.0}) {
    auto p = os::SchedulerParams::linux_2_4();
    p.base_refill_ticks = refill;
    report("base refill " + util::format_double(refill, 0) + " ticks", p);
  }

  // (a) sleeper credit: protection of light host processes, hence Th1.
  for (const double credit : {1.0, 4.0, 8.0}) {
    auto p = os::SchedulerParams::linux_2_4();
    p.sleep_credit_multiplier = credit;
    report("sleeper credit " + util::format_double(credit, 0) + "x", p);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: shrinking the base refill inflates the nice-19 share and\n"
      "pulls Th2 down (more host loads where even a reniced guest hurts);\n"
      "growing it starves the guest and pushes Th2 up. Weak sleeper credit\n"
      "exposes light host processes and pulls Th1 down; strong credit\n"
      "protects heavier hosts and pushes Th1 up. The paper's (0.20, 0.60)\n"
      "pair pins both knobs — the calibration is not a free lunch.\n");
  return 0;
}

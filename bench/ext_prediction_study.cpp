// Extension: the paper's proposed future work (§6) — availability
// prediction algorithms evaluated on the testbed trace.
//
// Train on the first 8 weeks, evaluate on the remainder with rolling
// queries. The history-window predictor implements exactly the §5.3
// proposal ("use history data for the corresponding time windows from
// previous weekdays or weekends").
#include <cstdio>

#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Extension: availability prediction study ==\n"
      "Simulated testbed trace; rolling evaluation after a 56-day history\n"
      "warm-up. Brier: lower is better. FPR is the fraction of truly-\n"
      "unavailable windows a scheduler would wrongly use.\n\n");

  core::TestbedConfig config;
  const auto trace = core::run_testbed(config);
  const trace::TraceCalendar calendar;

  const auto rows = core::run_prediction_study(trace, calendar);

  util::TextTable table({"Window", "Predictor", "Queries", "Brier",
                         "Accuracy", "TPR", "FPR", "Occ MAE"});
  for (const auto& row : rows) {
    table.add(util::format_duration_s(row.window.as_seconds()),
              row.result.predictor, row.result.queries,
              util::format_double(row.result.brier, 4),
              util::format_percent(row.result.accuracy, 1),
              util::format_percent(row.result.true_positive_rate, 1),
              util::format_percent(row.result.false_positive_rate, 1),
              util::format_double(row.result.occurrence_mae, 3));
  }
  std::printf("%s\n", table.str().c_str());
  if (!rows.empty()) {
    std::printf("base availability of evaluated windows: %s\n",
                util::format_percent(rows.front().result.base_availability, 1)
                    .c_str());
  }

  // Calibration: is the history-window probability trustworthy as a
  // probability? (Useful when a scheduler weighs risk, as the proactive
  // example does.)
  for (const auto& row : rows) {
    if (row.result.predictor != "history-window(k=8)" ||
        row.window != sim::SimDuration::hours(2)) {
      continue;
    }
    std::printf(
        "\nreliability of history-window(k=8) at the 2h window "
        "(ECE = %.3f):\n",
        row.result.expected_calibration_error());
    util::TextTable cal({"Predicted bucket", "Queries", "Mean predicted",
                         "Observed available"});
    for (std::size_t b = 0; b < 10; ++b) {
      const auto& bucket = row.result.reliability[b];
      if (bucket.count == 0) continue;
      cal.add(util::format_double(b * 0.1, 1) + "-" +
                  util::format_double((b + 1) * 0.1, 1),
              bucket.count, util::format_double(bucket.mean_predicted, 2),
              util::format_double(bucket.observed_available, 2));
    }
    std::printf("%s", cal.str().c_str());
  }
  return 0;
}

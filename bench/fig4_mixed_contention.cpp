// Figure 4 reproduction: slowdown of host processes under CPU + memory
// contention (SPEC CPU2000 guests vs Musbus host workloads on the 384 MB
// Solaris machine).
//
// Cells marked '*' thrash: the combined working sets (plus ~100 MB kernel)
// exceed physical memory, and changing CPU priority does not help —
// the paper's motivation for the distinct S4 state.
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

namespace {

void print_panel(const std::vector<core::Fig4Cell>& cells, int nice,
                 const char* title) {
  std::printf("%s\n", title);
  util::TextTable table(
      {"Host", "apsi", "galgel", "bzip2", "mcf"});
  for (const auto& w : workload::musbus_workloads()) {
    std::vector<std::string> row = {std::string(w.name)};
    for (const auto& app : workload::spec_cpu2000_apps()) {
      for (const auto& cell : cells) {
        if (cell.guest_nice == nice && cell.host_workload == w.name &&
            cell.guest_app == app.name) {
          std::string v = util::format_percent(cell.reduction, 1);
          if (cell.thrashing) v += " *";
          row.push_back(v);
        }
      }
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  std::printf(
      "== Figure 4: host slowdown under CPU and memory contention ==\n"
      "Simulated Solaris machine, 384 MB RAM (~100 MB kernel).\n"
      "'*' marks memory thrashing (paper: H2/H5 with apsi, bzip2, mcf).\n\n");

  core::Fig4Config config;
  const auto cells = core::run_fig4(config);

  print_panel(cells, 0, "(a) guest process with priority 0");
  print_panel(cells, 19, "(b) guest process with priority 19");

  std::printf(
      "expected shape: H1/H3 negligible; H4 needs renice; H6 exceeds 5%%\n"
      "even at nice 19; H2/H5 thrash with apsi/bzip2/mcf regardless of\n"
      "priority; galgel (29 MB) never thrashes.\n");
  return 0;
}

// Figure 5, measured: the multi-state availability model as it actually
// behaves on the testbed — state occupancy, observed transition structure,
// and sojourn times. The paper presents Figure 5 as a diagram; this is its
// empirical counterpart from the simulated 3-month trace.
#include <cstdio>

#include "fgcs/core/testbed.hpp"
#include "fgcs/stats/descriptive.hpp"
#include "fgcs/util/parallel.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;
using monitor::AvailabilityState;

int main() {
  std::printf(
      "== Figure 5 (measured): the five-state availability model ==\n"
      "State occupancy and transition structure over the simulated\n"
      "20-machine, 92-day testbed trace.\n\n");

  core::TestbedConfig config;
  std::vector<monitor::StateTimeline> timelines(config.machines);
  util::parallel_for(config.machines, [&](std::size_t m) {
    timelines[m] = core::run_testbed_machine_detailed(
                       config, static_cast<trace::MachineId>(m))
                       .timeline;
  });
  monitor::StateTimeline total = timelines[0];
  for (std::size_t m = 1; m < timelines.size(); ++m) {
    total.accumulate(timelines[m]);
  }

  const AvailabilityState states[] = {
      AvailabilityState::kS1FullAvailability,
      AvailabilityState::kS2LowestPriority,
      AvailabilityState::kS3CpuUnavailable,
      AvailabilityState::kS4MemoryThrashing,
      AvailabilityState::kS5MachineUnavailable,
  };

  util::TextTable occupancy(
      {"State", "Description", "Time share", "Mean sojourn", "Sojourns"});
  for (const auto s : states) {
    const auto sojourns = total.sojourn_hours(s);
    occupancy.add(monitor::to_string(s), monitor::describe(s),
                  util::format_percent(total.fraction_in(s), 2),
                  util::format_duration_s(stats::mean(sojourns) * 3600),
                  sojourns.size());
  }
  std::printf("%s\n", occupancy.str().c_str());
  std::printf("guest-usable time (S1+S2): %s\n\n",
              util::format_percent(total.availability(), 1).c_str());

  std::printf("observed transition counts (rows: from, cols: to):\n");
  util::TextTable matrix({"", "S1", "S2", "S3", "S4", "S5"});
  for (const auto from : states) {
    std::vector<std::string> row{monitor::to_string(from)};
    for (const auto to : states) {
      row.push_back(from == to ? "-"
                               : std::to_string(total.transition_count(from, to)));
    }
    matrix.add_row(row);
  }
  std::printf("%s\n", matrix.str().c_str());
  std::printf(
      "Figure 5's structure to check: failures are entered from S1/S2\n"
      "(and chained failures S3<->S4 during overlapping contention);\n"
      "recovery returns to S1/S2 — the failure states are unrecoverable\n"
      "only for the running guest, not for the machine.\n");
  return 0;
}

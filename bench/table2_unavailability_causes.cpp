// Table 2 reproduction: resource unavailability by cause over the
// simulated 3-month, 20-machine testbed trace (§5.1).
#include <cstdio>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Table 2: resource unavailability due to different causes ==\n"
      "Simulated testbed: 20 machines, 92 days (paper: Aug-Nov 2005,\n"
      "~1800 machine-days).\n\n");

  core::TestbedConfig config;
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);
  const auto t2 = analyzer.table2();

  util::TextTable table({"Category", "Frequency (per machine)", "Percentage",
                         "Paper frequency", "Paper pct"});
  auto range = [](const core::Table2Stats::Range& r) {
    return std::to_string(r.min) + "-" + std::to_string(r.max);
  };
  auto pct_range = [](double lo, double hi) {
    return util::format_percent(lo, 0) + "-" + util::format_percent(hi, 0);
  };
  table.add("Total", range(t2.total), "100%", "405-453", "100%");
  table.add("UEC: CPU contention", range(t2.cpu_contention),
            pct_range(t2.cpu_pct_min, t2.cpu_pct_max), "283-356", "69-79%");
  table.add("UEC: memory contention", range(t2.mem_contention),
            pct_range(t2.mem_pct_min, t2.mem_pct_max), "83-121", "19-30%");
  table.add("URR", range(t2.urr), pct_range(t2.urr_pct_min, t2.urr_pct_max),
            "3-12", "0-3%");
  std::printf("%s\n", table.str().c_str());

  std::printf("URR episodes shorter than 1 minute (machine reboots): %s "
              "(paper: ~90%%)\n",
              util::format_percent(t2.reboot_fraction_of_urr, 0).c_str());
  std::printf("total records in trace: %zu\n", trace.size());
  return 0;
}

// Extension: the paper's §6 future work — a testbed with a different host
// workload pattern (enterprise desktops) to check that the predictability
// findings carry over.
#include <cstdio>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Extension: enterprise-desktop testbed (paper §6 future work) ==\n"
      "9-to-5 office usage, no updatedb cron, rare reboots.\n\n");

  core::TestbedConfig config;
  config.profile = workload::LabProfile::enterprise_desktop();
  config.seed = 20060701;
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);

  const auto t2 = analyzer.table2();
  util::TextTable table({"Category", "Per-machine frequency", "Mean"});
  auto range = [](const core::Table2Stats::Range& r) {
    return std::to_string(r.min) + "-" + std::to_string(r.max);
  };
  table.add("Total", range(t2.total), util::format_double(t2.total.mean, 1));
  table.add("UEC: CPU", range(t2.cpu_contention),
            util::format_double(t2.cpu_contention.mean, 1));
  table.add("UEC: memory", range(t2.mem_contention),
            util::format_double(t2.mem_contention.mean, 1));
  table.add("URR", range(t2.urr), util::format_double(t2.urr.mean, 1));
  std::printf("%s\n", table.str().c_str());

  const auto iv = analyzer.intervals();
  std::printf("mean interval: weekday %s, weekend %s\n",
              util::format_duration_s(iv.weekday.mean_hours * 3600).c_str(),
              util::format_duration_s(iv.weekend.mean_hours * 3600).c_str());
  std::printf("hourly relative deviation: wd %.2f, we %.2f\n\n",
              analyzer.hourly_relative_deviation(false),
              analyzer.hourly_relative_deviation(true));

  // Does history-window prediction still win on this pattern?
  core::PredictionStudyConfig study;
  study.windows = {sim::SimDuration::hours(2), sim::SimDuration::hours(8)};
  const auto rows = core::run_prediction_study(trace, trace::TraceCalendar{},
                                               study);
  util::TextTable ptable({"Window", "Predictor", "Brier", "Accuracy"});
  for (const auto& row : rows) {
    ptable.add(util::format_duration_s(row.window.as_seconds()),
               row.result.predictor,
               util::format_double(row.result.brier, 4),
               util::format_percent(row.result.accuracy, 1));
  }
  std::printf("%s\n", ptable.str().c_str());
  return 0;
}

// Figure 6 reproduction: cumulative distribution of availability-interval
// lengths, weekday vs weekend (§5.2).
#include <cstdio>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/predict/interval_estimator.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Figure 6: CDF of availability-interval lengths ==\n"
      "Simulated testbed: 20 machines, 92 days.\n\n");

  core::TestbedConfig config;
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);
  const auto stats = analyzer.intervals();

  util::TextTable table({"Interval length (h)", "Weekday CDF", "Weekend CDF"});
  for (double h : {0.083, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0,
                   12.0}) {
    table.add(util::format_double(h, 2),
              util::format_double(stats.weekday.ecdf_hours(h), 3),
              util::format_double(stats.weekend.ecdf_hours(h), 3));
  }
  std::printf("%s\n", table.str().c_str());

  util::TextTable summary({"Metric", "Weekday", "Weekend", "Paper"});
  summary.add("intervals", std::to_string(stats.weekday.count),
              std::to_string(stats.weekend.count), "-");
  summary.add("mean length",
              util::format_duration_s(stats.weekday.mean_hours * 3600),
              util::format_duration_s(stats.weekend.mean_hours * 3600),
              "~3h wd / >5h we");
  summary.add("< 5 min", util::format_percent(stats.weekday.frac_under_5min, 1),
              util::format_percent(stats.weekend.frac_under_5min, 1),
              "~5% (all)");
  summary.add("5 min - 2 h",
              util::format_percent(stats.weekday.frac_5min_to_2h, 1),
              util::format_percent(stats.weekend.frac_5min_to_2h, 1),
              "flat/rare");
  summary.add("2 h - 4 h", util::format_percent(stats.weekday.frac_2h_to_4h, 1),
              util::format_percent(stats.weekend.frac_2h_to_4h, 1),
              "~60% wd");
  summary.add("4 h - 6 h", util::format_percent(stats.weekday.frac_4h_to_6h, 1),
              util::format_percent(stats.weekend.frac_4h_to_6h, 1),
              "~60% we");
  std::printf("%s\n", summary.str().c_str());

  // §5.2: "facilities to predict such interval lengths provide the
  // knowledge of how much computation power an FGCS system can deliver
  // without interruption" — the mean-residual-life estimator, probed on
  // machine 0 at representative instants of the final week.
  const trace::TraceIndex index(trace);
  const trace::TraceCalendar calendar;
  const predict::IntervalLengthEstimator estimator(index, calendar);
  util::TextTable probes(
      {"Probe (day 88)", "Day class", "Expected remaining availability"});
  for (int hour : {2, 9, 14, 20}) {
    const auto t = sim::SimTime::epoch() + sim::SimDuration::days(88) +
                   sim::SimDuration::hours(hour);
    const double remaining = estimator.expected_remaining_hours(0, t);
    probes.add(std::to_string(hour) + ":00",
               calendar.is_weekend(t) ? "weekend" : "weekday",
               remaining <= 0.0
                   ? std::string("down now")
                   : util::format_duration_s(remaining * 3600));
  }
  std::printf("%s", probes.str().c_str());
  return 0;
}

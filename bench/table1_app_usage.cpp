// Table 1 reproduction: resource usage of the tested applications.
//
// CPU usage is *measured* by running each application alone on the
// simulated 300 MHz / 384 MB Solaris machine (getrusage-equivalent
// accounting); memory footprints are the modelled working sets.
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf("== Table 1: resource usage of tested applications ==\n\n");

  core::ContentionConfig config;
  config.scheduler = os::SchedulerParams::solaris_ts();
  config.memory = os::MemoryParams::solaris_384mb();

  const auto rows = core::run_table1(config);

  util::TextTable table({"Workload", "CPU usage", "Resident size",
                         "Virtual size", "Paper CPU"});
  auto paper_cpu = [](const std::string& name) -> const char* {
    if (name == "apsi") return "98%";
    if (name == "galgel") return "99%";
    if (name == "bzip2") return "97%";
    if (name == "mcf") return "99%";
    if (name == "H1") return "8.6%";
    if (name == "H2") return "9.2%";
    if (name == "H3") return "17.2%";
    if (name == "H4") return "21.9%";
    if (name == "H5") return "57.0%";
    if (name == "H6") return "66.2%";
    return "?";
  };
  for (const auto& row : rows) {
    table.add(row.name, util::format_percent(row.cpu_usage, 1),
              util::format_double(row.resident_mb, 0) + " MB",
              util::format_double(row.virtual_mb, 0) + " MB",
              paper_cpu(row.name));
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}

// Ablation: the 1-minute suspend window (§4).
//
// The paper keeps S1/S2 through sub-minute load spikes ("we find it very
// common that the host CPU load which exceeds Th2 will drop down shortly
// after several seconds") and only declares S3 when the excursion
// sustains. This ablation sweeps the sustain window and reports how many
// guest terminations the policy avoids.
#include <cstdio>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Ablation: S3 sustain (suspend) window ==\n"
      "Same host behaviour; the detector's sustain window varied.\n\n");

  util::TextTable table({"Sustain window", "CPU occ/machine", "Total/machine",
                         "Weekday mean interval"});
  for (int seconds : {0, 15, 30, 60, 120, 300}) {
    core::TestbedConfig config;
    config.policy.sustain_window = sim::SimDuration::seconds(seconds);
    const auto trace = core::run_testbed(config);
    const core::TraceAnalyzer analyzer(trace);
    const auto t2 = analyzer.table2();
    const auto iv = analyzer.intervals();
    table.add(std::to_string(seconds) + "s",
              util::format_double(t2.cpu_contention.mean, 1),
              util::format_double(t2.total.mean, 1),
              util::format_duration_s(iv.weekday.mean_hours * 3600));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: with no sustain window every transient spike kills the\n"
      "guest; the paper's 1 minute absorbs spikes at the cost of letting\n"
      "the guest sit suspended briefly during real S3 episodes.\n");
  return 0;
}

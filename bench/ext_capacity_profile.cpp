// Extension: deliverable compute capacity by hour of day.
//
// The related work the paper positions against ([17], [8]) measured *CPU
// availability*; the paper's model adds the state dimension. This bench
// combines them: how much CPU a guest could actually harvest from the
// testbed, per hour of day, accounting for the five-state model (nothing
// is deliverable in S3/S4/S5).
#include <cstdio>

#include "fgcs/core/testbed.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Extension: deliverable capacity by hour of day ==\n"
      "Mean CPU fraction a guest can harvest (0 during S3/S4/S5), and\n"
      "mean free memory, over the simulated 20x92 testbed.\n\n");

  core::TestbedConfig config;
  const auto profile = core::run_capacity_profile(config);

  util::TextTable table({"Hour", "Weekday CPU", "Weekend CPU",
                         "Weekday free MB", "Weekend free MB"});
  for (int h = 0; h < 24; ++h) {
    const auto hh = static_cast<std::size_t>(h);
    table.add(std::to_string(h) + "-" + std::to_string(h + 1),
              util::format_percent(profile.weekday_cpu[hh], 1),
              util::format_percent(profile.weekend_cpu[hh], 1),
              util::format_double(profile.weekday_free_mem[hh], 0),
              util::format_double(profile.weekend_free_mem[hh], 0));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("overall deliverable CPU: %s of one machine\n",
              util::format_percent(profile.overall_cpu, 1).c_str());
  std::printf("machine usable (S1/S2) share of samples: %s\n",
              util::format_percent(profile.overall_usable, 1).c_str());
  std::printf(
      "\nreading: even this heavily-used student lab delivers most of a\n"
      "CPU to guests around the clock except the 4-5 AM updatedb window\n"
      "and busy afternoons — the resource pool the paper's FGCS vision\n"
      "wants to harvest.\n");
  return 0;
}

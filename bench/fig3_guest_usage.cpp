// Figure 3 reproduction: guest CPU usage at equal vs lowest priority under
// light host load.
//
// The paper: always enforcing the lowest guest priority is too
// conservative — the guest loses about 2% CPU on average, which matters
// for hour-long jobs.
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Figure 3: guest CPU usage with equal and lowest priority ==\n"
      "x-axis labels are host+guest isolated usages, e.g. 0.2+1.0.\n\n");

  core::ContentionConfig config;
  const auto points = core::run_fig3(config);

  util::TextTable table({"Host+Guest", "Equal priority", "Nice 19", "Delta"});
  double delta_sum = 0.0;
  for (const auto& p : points) {
    table.add(util::format_double(p.host_usage, 1) + "+" +
                  util::format_double(p.guest_demand, 1),
              util::format_percent(p.guest_usage_equal, 1),
              util::format_percent(p.guest_usage_lowest, 1),
              util::format_percent(
                  p.guest_usage_equal - p.guest_usage_lowest, 2));
    delta_sum += p.guest_usage_equal - p.guest_usage_lowest;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("mean guest-CPU advantage of equal priority: %s (paper: ~2%%)\n",
              util::format_percent(
                  delta_sum / static_cast<double>(points.size()), 2)
                  .c_str());
  return 0;
}

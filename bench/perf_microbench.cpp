// Library micro-benchmarks (google-benchmark): the hot paths of the
// simulation and analysis pipeline.
//
// Beyond the google-benchmark suite:
//   * `--obs-baseline[=path]` measures event-queue throughput with the
//     observability layer disabled vs enabled, plus the fleet sweep with
//     and without the telemetry pipeline (time series + observer +
//     FGCSMET1 segment write), and writes the comparison to a JSON file
//     (default BENCH_obs.json) — the overhead numbers quoted in
//     docs/observability.md and gated by scripts/check_build.sh --bench.
//   * `--simcore[=path]` runs the tracked sim-core suite (event-queue
//     throughput, single-machine sim-seconds/sec with fast-forward on and
//     off, full 20-machine/92-day testbed wall time) and writes
//     BENCH_simcore.json — the numbers quoted in docs/performance.md and
//     regression-checked by scripts/run_bench.sh.
//   * `--fleet[=path]` runs the tracked fleet-scale suite (2,000 machines,
//     sharded sweep engine): a threads sweep at one simulated week, an
//     in-memory vs spill peak-RSS comparison, and the full 92-day sweep.
//     Each configuration runs in a forked child so wait4()'s ru_maxrss
//     reports that run's peak RSS alone. Writes BENCH_fleet.json.
//   * `--serve[=path]` runs the tracked serving-layer suite: a 2,000-
//     machine/28-day fleet ingested live into an AvailabilityFeed, then
//     one million point queries (hot-machine zipf mix) against the
//     published snapshot — ingest events/sec, queries/sec, and p50/p99
//     per-query latency. Writes BENCH_serve.json, gated by
//     scripts/run_bench.sh and scripts/check_build.sh --bench.
//   * `--query[=path]` runs the tracked streaming-analytics suite: spill
//     a 1,000,000-machine day with the fleet engine, then run the full
//     analyzer + training-scan aggregations over the segments via
//     fgcs::query — full-scan throughput and peak RSS (forked-child
//     ru_maxrss; must stay O(shard), not O(fleet)) plus a selective
//     predicate demonstrating zone-map block pushdown. Writes
//     BENCH_query.json, gated by scripts/run_bench.sh.
//   * `--all` runs all tracked suites.
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/fleet/fleet.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/ishare/system.hpp"
#include "fgcs/monitor/detector.hpp"
#include "fgcs/os/machine.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/query/engine.hpp"
#include "fgcs/recover/manifest.hpp"
#include "fgcs/serve/load.hpp"
#include "fgcs/recover/shard_state.hpp"
#include "fgcs/sim/simulation.hpp"
#include "fgcs/stats/ecdf.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/parallel.hpp"
#include "fgcs/workload/load_model.hpp"
#include "fgcs/workload/synthetic.hpp"

using namespace fgcs;

// --- global allocation counting ------------------------------------------
//
// The bench binary replaces global operator new/delete with counting
// versions so the fleet suite can *prove* the columnar engine's
// zero-allocation steady state (steady_state_allocs_per_machine_day in
// BENCH_fleet.json, asserted == 0 by scripts/run_bench.sh). The hooks are
// process-wide but cost one relaxed fetch_add per allocation — noise for
// every other measurement here.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

std::uint64_t heap_alloc_count() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation;
    for (int i = 0; i < 1000; ++i) {
      simulation.after(sim::SimDuration::millis(i % 97), [] {});
    }
    simulation.run_all();
    benchmark::DoNotOptimize(simulation.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// The same workload with an Observer installed: every executed event pays
// the on_sim_event() hook (counter + max-depth gauge).
void BM_EventQueueScheduleRunObserved(benchmark::State& state) {
  obs::Observer observer;
  obs::ScopedObserver guard(&observer);
  for (auto _ : state) {
    sim::Simulation simulation;
    for (int i = 0; i < 1000; ++i) {
      simulation.after(sim::SimDuration::millis(i % 97), [] {});
    }
    simulation.run_all();
    benchmark::DoNotOptimize(simulation.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRunObserved);

void BM_MachineTick(benchmark::State& state) {
  const auto procs = state.range(0);
  os::Machine machine(os::SchedulerParams::linux_2_4(),
                      os::MemoryParams::linux_1gb(), 42);
  util::RngStream rng(7);
  for (std::int64_t i = 0; i < procs; ++i) {
    machine.spawn(workload::synthetic_host(0.3 + 0.05 * (i % 5)));
  }
  machine.spawn(workload::synthetic_guest(19));
  for (auto _ : state) {
    machine.run_for(sim::SimDuration::seconds(1));  // 100 ticks
    benchmark::DoNotOptimize(machine.totals().total().as_micros());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MachineTick)->Arg(2)->Arg(5)->Arg(10);

void BM_DetectorObserve(benchmark::State& state) {
  monitor::UnavailabilityDetector detector{
      monitor::ThresholdPolicy::linux_testbed()};
  util::RngStream rng(11);
  sim::SimTime t = sim::SimTime::epoch();
  for (auto _ : state) {
    t += sim::SimDuration::seconds(15);
    monitor::HostSample s;
    s.time = t;
    s.host_cpu = rng.uniform();
    s.free_mem_mb = 300.0 + 600.0 * rng.uniform();
    s.service_alive = true;
    benchmark::DoNotOptimize(detector.observe(s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorObserve);

void BM_GenerateMachineLoadDay(benchmark::State& state) {
  const auto profile = workload::LabProfile::purdue_lab();
  std::uint32_t machine = 0;
  for (auto _ : state) {
    auto trace = workload::generate_machine_load(profile, 99, machine++, 7);
    benchmark::DoNotOptimize(trace.load.points().size());
  }
  state.SetItemsProcessed(state.iterations() * 7);  // machine-days
}
BENCHMARK(BM_GenerateMachineLoadDay);

void BM_TestbedMachineWeek(benchmark::State& state) {
  core::TestbedConfig config;
  config.days = 7;
  config.machines = 1;
  for (auto _ : state) {
    auto records = core::run_testbed_machine(config, 0);
    benchmark::DoNotOptimize(records.size());
  }
  state.SetItemsProcessed(state.iterations() * 7);
}
BENCHMARK(BM_TestbedMachineWeek);

void BM_EcdfEval(benchmark::State& state) {
  util::RngStream rng(3);
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng.uniform(0.0, 12.0);
  stats::Ecdf ecdf{xs};
  double q = 0.0;
  for (auto _ : state) {
    q += 0.37;
    if (q > 12.0) q = 0.0;
    benchmark::DoNotOptimize(ecdf(q));
  }
}
BENCHMARK(BM_EcdfEval);

void BM_TraceRoundTripBinary(benchmark::State& state) {
  core::TestbedConfig config;
  config.days = 14;
  config.machines = 4;
  const auto trace = core::run_testbed(config);
  for (auto _ : state) {
    std::stringstream buffer;
    trace::write_trace_binary(trace, buffer);
    auto loaded = trace::read_trace_binary(buffer);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_TraceRoundTripBinary);

void BM_HistoryWindowPredict(benchmark::State& state) {
  core::TestbedConfig config;
  config.days = 35;
  config.machines = 4;
  const auto trace = core::run_testbed(config);
  const trace::TraceIndex index(trace);
  const trace::TraceCalendar calendar;
  predict::HistoryWindowPredictor predictor;
  predictor.attach(index, calendar);
  sim::SimTime t = trace.horizon_start() + sim::SimDuration::days(30);
  for (auto _ : state) {
    t += sim::SimDuration::minutes(30);
    if (t + sim::SimDuration::hours(2) >= trace.horizon_end()) {
      t = trace.horizon_start() + sim::SimDuration::days(30);
    }
    predict::PredictionQuery q{0, t, sim::SimDuration::hours(2)};
    benchmark::DoNotOptimize(predictor.predict_availability(q));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryWindowPredict);

void BM_IshareClusterHour(benchmark::State& state) {
  for (auto _ : state) {
    ishare::FgcsSystem system;
    for (int n = 0; n < 4; ++n) {
      ishare::NodeConfig cfg;
      cfg.host_processes = {workload::synthetic_host(0.2 + 0.15 * n)};
      system.add_node(cfg);
    }
    ishare::GuestJob job;
    job.work = sim::SimDuration::minutes(20);
    for (int i = 0; i < 6; ++i) system.submit(job);
    system.run_for(sim::SimDuration::hours(1));
    benchmark::DoNotOptimize(system.stats().completed);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // node-hours
}
BENCHMARK(BM_IshareClusterHour);

// The shape obs::Histogram::observe() had before the count was derived
// from the buckets: a third shared atomic RMW per observation. Kept here
// (and only here) so the contention benchmark below can show what the
// dropped RMW buys.
class ThreeRmwHistogram {
 public:
  explicit ThreeRmwHistogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(
            bounds_.size() + 1)) {}

  void observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Many threads observing into one shared series — the profiling-scope
// pattern under a parallel sweep. Compare against the Legacy variant to
// see the cost of the third RMW under contention.
void BM_HistogramObserve(benchmark::State& state) {
  static obs::Histogram hist(obs::Histogram::default_time_bounds());
  double v = 1e-6 * (1 + state.thread_index());
  for (auto _ : state) {
    v *= 1.7;
    if (v > 120.0) v = 1e-6;
    hist.observe(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(2)->Threads(4);

void BM_HistogramObserveLegacy(benchmark::State& state) {
  static ThreeRmwHistogram hist(obs::Histogram::default_time_bounds());
  double v = 1e-6 * (1 + state.thread_index());
  for (auto _ : state) {
    v *= 1.7;
    if (v > 120.0) v = 1e-6;
    hist.observe(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserveLegacy)->Threads(1)->Threads(2)->Threads(4);

// Schedules and runs 1000-event batches for ~100ms windows and returns
// the best observed throughput (events/sec) over `trials` windows. Using
// the max filters scheduler noise: the interesting quantity is the cost
// the hook *adds*, not the machine's worst-case jitter.
double measure_event_queue_throughput(int trials) {
  constexpr int kEventsPerRep = 1000;
  double best = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t events = 0;
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(100)) {
      sim::Simulation simulation;
      for (int i = 0; i < kEventsPerRep; ++i) {
        simulation.after(sim::SimDuration::millis(i % 97), [] {});
      }
      simulation.run_all();
      events += simulation.events_executed();
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    best = std::max(best, static_cast<double>(events) / seconds);
  }
  return best;
}

struct FleetRun {
  bool ok = false;
  double wall_seconds = 0.0;
  std::uint64_t records = 0;
  double peak_rss_mb = 0.0;

  double machine_days_per_sec(std::uint32_t machines, int days) const {
    return static_cast<double>(machines) * days / wall_seconds;
  }
};

// Runs one fleet sweep in a forked child: wait4()'s ru_maxrss then
// reports that configuration's peak RSS alone, uncontaminated by earlier
// runs in the same process (RSS high-water marks never come back down).
// The child reports its in-process wall time and record count through a
// pipe. A non-empty `metrics_path` turns on the full telemetry pipeline
// (per-shard time series + the self-installed observer). `checkpoint`
// toggles the durable per-shard commit (spill mode's default).
FleetRun measure_fleet(std::uint32_t machines, int days, std::size_t threads,
                       bool spill, const std::string& metrics_path = "",
                       bool checkpoint = true) {
  namespace fs = std::filesystem;
  fs::path dir;
  if (spill) {
    char tmpl[] = "/tmp/fgcs-fleet-bench-XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "fleet bench: mkdtemp failed\n");
      return {};
    }
    dir = made;
  }

  int fds[2];
  if (pipe(fds) != 0) {
    std::fprintf(stderr, "fleet bench: pipe failed\n");
    return {};
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "fleet bench: fork failed\n");
    close(fds[0]);
    close(fds[1]);
    return {};
  }
  if (pid == 0) {
    close(fds[0]);
    int rc = 1;
    try {
      fleet::FleetConfig config;
      config.testbed.machines = machines;
      config.testbed.days = days;
      config.threads = threads;
      if (spill) config.spill_dir = dir.string();
      config.checkpoint = checkpoint;
      config.metrics_path = metrics_path;
      const auto start = std::chrono::steady_clock::now();
      const auto result = fleet::run_fleet(config);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const std::uint64_t records = result.total_records;
      if (write(fds[1], &wall, sizeof wall) == sizeof wall &&
          write(fds[1], &records, sizeof records) == sizeof records) {
        rc = 0;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet bench child: %s\n", e.what());
    }
    _exit(rc);
  }

  close(fds[1]);
  FleetRun run;
  const bool got = read(fds[0], &run.wall_seconds, sizeof run.wall_seconds) ==
                       sizeof run.wall_seconds &&
                   read(fds[0], &run.records, sizeof run.records) ==
                       sizeof run.records;
  close(fds[0]);

  rusage usage{};
  int status = 0;
  wait4(pid, &status, 0, &usage);
  run.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB
  run.ok = got && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (spill) fs::remove_all(dir);
  if (!run.ok) std::fprintf(stderr, "fleet bench: child run failed\n");
  return run;
}

int run_obs_baseline(const std::string& path) {
  constexpr int kTrials = 24;
  // Warm-up window so both measurements see a hot cache.
  measure_event_queue_throughput(1);

  // Interleave disabled/enabled windows so slow drift (thermal, a noisy
  // neighbour on a shared host) hits both configurations equally; best-of
  // then compares the two quiet-machine peaks.
  double disabled = 0.0;
  double enabled = 0.0;
  obs::Observer observer;
  for (int trial = 0; trial < kTrials; ++trial) {
    disabled = std::max(disabled, measure_event_queue_throughput(1));
    {
      obs::ScopedObserver guard(&observer);
      enabled = std::max(enabled, measure_event_queue_throughput(1));
    }
  }

  const double overhead_percent = (disabled / enabled - 1.0) * 100.0;

  // Fleet-scale telemetry overhead: the same sharded sweep with and
  // without the metrics pipeline (per-shard time-series collection, the
  // self-installed observer, and the post-merge FGCSMET1 segment write).
  // Forked children keep the runs independent.
  constexpr std::uint32_t kFleetMachines = 256;
  constexpr int kFleetDays = 7;
  // Prefer tmpfs for the metrics segment: the benchmark isolates the
  // cost of *collecting* telemetry, and an ext4 writeback stall on the
  // ~1 MB segment would hit only the enabled runs.
  char shm_tmpl[] = "/dev/shm/fgcs-obs-bench-XXXXXX";
  char tmp_tmpl[] = "/tmp/fgcs-obs-bench-XXXXXX";
  const char* metrics_dir = mkdtemp(shm_tmpl);
  if (metrics_dir == nullptr) metrics_dir = mkdtemp(tmp_tmpl);
  if (metrics_dir == nullptr) {
    std::fprintf(stderr, "obs baseline: mkdtemp failed\n");
    return 1;
  }
  const std::string metrics_path = std::string(metrics_dir) + "/fleet.met1";
  // The recorded overhead is *phase-accounted*: the telemetry phases the
  // sweep adds (shard allocation, one binned on_sample per simulated
  // sample, the FGCSMET1 segment write) are timed directly against the
  // best baseline wall. An end-to-end off/on ratio cannot resolve the
  // signal on a shared host: the paired null experiment (off vs off)
  // reads within ±1%, yet allocating the bins *without* installing
  // telemetry — or installing an observer with every per-sample path
  // compiled out — shifts the walk by 2-5% through heap-layout and
  // code-placement artifacts alone, several times the true cost. The
  // off/on ratio is still printed below as a coarse diagnostic, and the
  // per-hook cost stays guarded by the event-queue gate above.
  constexpr int kFleetTrials = 4;
  std::printf("obs baseline: fleet telemetry overhead, %u machines x %d "
              "days (phase-accounted, %d off/on pairs as diagnostic)...\n",
              kFleetMachines, kFleetDays, kFleetTrials);
  double fleet_disabled = 0.0;  // machine-days/sec, telemetry off
  double fleet_enabled = 0.0;   // machine-days/sec, telemetry on
  double fleet_off_best_wall = 0.0;
  std::vector<double> pair_overhead;
  for (int trial = 0; trial < kFleetTrials; ++trial) {
    const bool off_first = trial % 2 == 0;
    const auto first = measure_fleet(kFleetMachines, kFleetDays, 1, false,
                                     off_first ? "" : metrics_path);
    const auto second = measure_fleet(kFleetMachines, kFleetDays, 1, false,
                                      off_first ? metrics_path : "");
    const FleetRun& off = off_first ? first : second;
    const FleetRun& on = off_first ? second : first;
    if (!off.ok || !on.ok) {
      std::filesystem::remove_all(metrics_dir);
      return 1;
    }
    fleet_disabled = std::max(
        fleet_disabled, off.machine_days_per_sec(kFleetMachines, kFleetDays));
    fleet_enabled = std::max(
        fleet_enabled, on.machine_days_per_sec(kFleetMachines, kFleetDays));
    if (fleet_off_best_wall == 0.0 || off.wall_seconds < fleet_off_best_wall) {
      fleet_off_best_wall = off.wall_seconds;
    }
    pair_overhead.push_back((on.wall_seconds / off.wall_seconds - 1.0) *
                            100.0);
  }
  std::sort(pair_overhead.begin(), pair_overhead.end());
  std::printf("obs baseline:   off/on wall ratio median %+.2f%% "
              "(diagnostic; noise floor exceeds the signal)\n",
              pair_overhead[pair_overhead.size() / 2]);

  // Phase accounting: replicate exactly the telemetry work run_fleet adds
  // for this configuration — the same shard partition, the same
  // per-machine monotone sample stream, the same totals fold and segment
  // write — and take the best of a few repetitions so ambient load
  // cannot inflate the phases.
  const sim::SimTime horizon_start = sim::SimTime::epoch();
  const sim::SimTime horizon_end =
      horizon_start + sim::SimDuration::days(kFleetDays);
  const sim::SimDuration resolution = sim::SimDuration::hours(1);
  const sim::SimDuration sample_period = sim::SimDuration::seconds(15);
  const std::size_t shard_count = 64;  // kMaxShards partition at this scale
  const std::uint32_t per_shard = (kFleetMachines + shard_count - 1) /
                                  static_cast<std::uint32_t>(shard_count);
  const std::uint64_t steps =
      static_cast<std::uint64_t>(kFleetDays) * 86400 / 15;
  double alloc_ms = 0.0, collect_ms = 0.0, write_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<obs::TimeSeriesShard> shards;
    shards.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards.emplace_back(horizon_start, horizon_end, resolution);
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (std::uint32_t m = 0; m < kFleetMachines; ++m) {
      obs::TimeSeriesShard& shard = shards[m / per_shard];
      sim::SimTime at = horizon_start;
      for (std::uint64_t i = 0; i < steps; ++i) {
        at = at + sample_period;
        shard.on_sample(at);
      }
    }
    const auto t2 = std::chrono::steady_clock::now();
    {
      obs::MetricsWriterV1 writer(metrics_path, horizon_start, horizon_end,
                                  resolution);
      obs::TimeSeriesShard totals(horizon_start, horizon_end, resolution);
      for (const auto& shard : shards) totals.add(shard);
      totals.write_series(writer, {});
      char label[16];
      for (std::size_t s = 0; s < shard_count; ++s) {
        std::snprintf(label, sizeof label, "%04zu", s);
        shards[s].write_series(writer, {{"shard", label}});
      }
      writer.finish();
    }
    const auto t3 = std::chrono::steady_clock::now();
    const auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    if (rep == 0 || ms(t0, t1) < alloc_ms) alloc_ms = ms(t0, t1);
    if (rep == 0 || ms(t1, t2) < collect_ms) collect_ms = ms(t1, t2);
    if (rep == 0 || ms(t2, t3) < write_ms) write_ms = ms(t2, t3);
  }
  std::filesystem::remove_all(metrics_dir);
  const double telemetry_ms = alloc_ms + collect_ms + write_ms;
  const double fleet_overhead_percent =
      telemetry_ms / (fleet_off_best_wall * 1000.0) * 100.0;
  std::printf("obs baseline:   phases: alloc %.2f ms + collect %.2f ms "
              "(%llu samples) + write %.2f ms = %.2f ms on %.0f ms baseline\n",
              alloc_ms, collect_ms,
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(kFleetMachines) * steps),
              write_ms, telemetry_ms, fleet_off_best_wall * 1000.0);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buffer[1024];
  std::snprintf(buffer, sizeof buffer,
                "{\n"
                "  \"benchmark\": \"event_queue_schedule_run\",\n"
                "  \"events_per_batch\": 1000,\n"
                "  \"trials\": %d,\n"
                "  \"observer_disabled_events_per_sec\": %.0f,\n"
                "  \"observer_enabled_events_per_sec\": %.0f,\n"
                "  \"overhead_percent\": %.2f,\n"
                "  \"fleet_telemetry_machines\": %u,\n"
                "  \"fleet_telemetry_days\": %d,\n"
                "  \"fleet_telemetry_disabled_md_per_sec\": %.0f,\n"
                "  \"fleet_telemetry_enabled_md_per_sec\": %.0f,\n"
                "  \"fleet_telemetry_alloc_ms\": %.2f,\n"
                "  \"fleet_telemetry_collect_ms\": %.2f,\n"
                "  \"fleet_telemetry_write_ms\": %.2f,\n"
                "  \"fleet_telemetry_overhead_percent\": %.2f\n"
                "}\n",
                kTrials, disabled, enabled, overhead_percent, kFleetMachines,
                kFleetDays, fleet_disabled, fleet_enabled, alloc_ms,
                collect_ms, write_ms, fleet_overhead_percent);
  out << buffer;
  std::printf("obs baseline: disabled %.2fM ev/s, enabled %.2fM ev/s, "
              "overhead %.2f%% -> %s\n",
              disabled / 1e6, enabled / 1e6, overhead_percent, path.c_str());
  std::printf("obs baseline: fleet telemetry off %.0f md/s, on %.0f md/s, "
              "phase-accounted overhead %.2f%%\n",
              fleet_disabled, fleet_enabled, fleet_overhead_percent);
  return 0;
}

// Sim-seconds simulated per wall-clock second for one contended machine
// (duty-cycle host + nice-19 guest), best of `trials`.
double measure_machine_sim_rate(bool fast_forward, int trials) {
  constexpr double kSimSeconds = 3600.0;  // one simulated hour per trial
  double best = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    os::SchedulerParams params = os::SchedulerParams::linux_2_4();
    params.fast_forward = fast_forward;
    os::Machine machine(params, os::MemoryParams::linux_1gb(), 42);
    machine.spawn(workload::synthetic_host(0.5));
    machine.spawn(workload::synthetic_guest(19));
    const auto start = std::chrono::steady_clock::now();
    machine.run_for(sim::SimDuration::seconds(static_cast<int>(kSimSeconds)));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchmark::DoNotOptimize(machine.totals().total().as_micros());
    best = std::max(best, kSimSeconds / wall);
  }
  return best;
}

int run_simcore_suite(const std::string& path) {
  // PR-1's committed observer-disabled event-queue throughput
  // (BENCH_obs.json at commit b814219) — the reference this PR's queue
  // rewrite is measured against.
  constexpr double kPr1EventsPerSec = 6267481.0;

  std::printf("simcore: measuring single-machine sim rate...\n");
  const double machine_ff = measure_machine_sim_rate(true, 3);
  const double machine_forced = measure_machine_sim_rate(false, 3);

  std::printf("simcore: running the full testbed (20 machines, 92 days)...\n");
  core::TestbedConfig config;  // paper-scale defaults
  const auto start = std::chrono::steady_clock::now();
  const auto trace = core::run_testbed(config);
  const double testbed_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double machine_days =
      static_cast<double>(config.machines) * config.days;

  // Queue throughput is measured *after* the sustained phases above so
  // the CPU clock has ramped; PR-1's reference number was likewise taken
  // late in a warm process (after 24 interleaved obs-baseline windows).
  std::printf("simcore: measuring event-queue throughput...\n");
  measure_event_queue_throughput(1);  // warm-up
  const double events_per_sec = measure_event_queue_throughput(24);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buffer[1024];
  std::snprintf(
      buffer, sizeof buffer,
      "{\n"
      "  \"suite\": \"simcore\",\n"
      "  \"event_queue_events_per_sec\": %.0f,\n"
      "  \"pr1_baseline_events_per_sec\": %.0f,\n"
      "  \"speedup_vs_pr1\": %.2f,\n"
      "  \"machine_sim_seconds_per_sec_fast_forward\": %.0f,\n"
      "  \"machine_sim_seconds_per_sec_forced_tick\": %.0f,\n"
      "  \"fast_forward_speedup\": %.2f,\n"
      "  \"testbed_machines\": %u,\n"
      "  \"testbed_days\": %d,\n"
      "  \"testbed_records\": %zu,\n"
      "  \"testbed_wall_seconds\": %.2f,\n"
      "  \"testbed_machine_days_per_sec\": %.0f,\n"
      "  \"testbed_threads\": %zu\n"
      "}\n",
      events_per_sec, kPr1EventsPerSec, events_per_sec / kPr1EventsPerSec,
      machine_ff, machine_forced, machine_ff / machine_forced,
      config.machines, config.days, trace.size(), testbed_wall,
      machine_days / testbed_wall, util::configured_thread_count());
  out << buffer;
  std::printf(
      "simcore: queue %.2fM ev/s (%.2fx vs PR-1), machine %.0f/%.0f "
      "sim-s/s (ff %.1fx), testbed %.2fs wall (%u machines x %d days, "
      "%zu records) -> %s\n",
      events_per_sec / 1e6, events_per_sec / kPr1EventsPerSec, machine_ff,
      machine_forced, machine_ff / machine_forced, testbed_wall,
      config.machines, config.days, trace.size(), path.c_str());
  return 0;
}

// Steady-state heap-allocation rate of the columnar machine walk: one
// warm-up pass grows the shard arena and record buffer to their high-water
// marks, then an identical counted pass over the same machines must not
// touch the heap at all. Single-threaded and in-process so the counter
// sees exactly the simulation's allocations.
double measure_steady_state_allocs(std::uint32_t machines, int days) {
  core::TestbedConfig config;
  config.machines = machines;
  config.days = days;
  const core::TestbedRunner runner(config);
  core::MachineScratch scratch;
  std::vector<trace::UnavailabilityRecord> records;
  for (std::uint32_t m = 0; m < machines; ++m) {
    runner.run_into(m, scratch, records);  // warm-up: grow arena + buffers
    benchmark::DoNotOptimize(records.size());
  }
  const std::uint64_t before = heap_alloc_count();
  for (std::uint32_t m = 0; m < machines; ++m) {
    runner.run_into(m, scratch, records);
    benchmark::DoNotOptimize(records.size());
  }
  const std::uint64_t after = heap_alloc_count();
  return static_cast<double>(after - before) /
         (static_cast<double>(machines) * days);
}

int run_fleet_suite(const std::string& path) {
  constexpr std::uint32_t kMachines = 2000;
  constexpr int kSweepDays = 7;
  constexpr int kFullDays = 92;

  // Honest thread accounting: hardware_concurrency() is what the machine
  // can actually run in parallel. Sweep points above it would only
  // measure oversubscription scheduling noise, so they are skipped and
  // recorded as such in the JSON.
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::vector<std::size_t> candidates{1, 2, 4, hw};
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<std::size_t> sweep, skipped;
  for (const auto threads : candidates) {
    (threads <= hw ? sweep : skipped).push_back(threads);
  }
  for (const auto threads : skipped) {
    std::printf("fleet: skipping %zu-thread point (only %zu hardware "
                "thread(s))\n",
                threads, hw);
  }

  constexpr std::uint32_t kAllocMachines = 32;
  std::printf("fleet: counting steady-state heap allocations (%u machines "
              "x %d days, single thread)...\n",
              kAllocMachines, kSweepDays);
  const double allocs_per_md =
      measure_steady_state_allocs(kAllocMachines, kSweepDays);
  std::printf("fleet:   %.2f allocations per machine-day after warm-up\n",
              allocs_per_md);

  std::vector<FleetRun> sweep_runs;
  for (const auto threads : sweep) {
    // The single-thread rate is the regression-gated scalar, so it gets
    // best-of-3 trials; one measurement swings 2x on a noisy shared host.
    const int trials = threads == 1 ? 3 : 1;
    std::printf("fleet: %u machines x %d days, %zu thread(s), spilling "
                "(best of %d)...\n",
                kMachines, kSweepDays, threads, trials);
    FleetRun best{};
    for (int t = 0; t < trials; ++t) {
      const auto run = measure_fleet(kMachines, kSweepDays, threads, true);
      if (!run.ok) return 1;
      std::printf("fleet:   %.2fs wall, %.0f machine-days/s, peak RSS "
                  "%.1f MB\n",
                  run.wall_seconds,
                  run.machine_days_per_sec(kMachines, kSweepDays),
                  run.peak_rss_mb);
      if (t == 0 || run.wall_seconds < best.wall_seconds) best = run;
    }
    sweep_runs.push_back(best);
  }

  std::printf("fleet: %u machines x %d days, 1 thread, in-memory...\n",
              kMachines, kSweepDays);
  const auto inmem = measure_fleet(kMachines, kSweepDays, 1, false);
  if (!inmem.ok) return 1;
  std::printf("fleet:   peak RSS %.1f MB in-memory vs %.1f MB spilled\n",
              inmem.peak_rss_mb, sweep_runs.front().peak_rss_mb);

  // Checkpointing cost: the per-shard commit (state blob + atomic
  // manifest rewrite) plus the sweep-final durable sync, measured by
  // replaying the full sweep's commit sequence against a scratch
  // directory and expressed against the measured full-sweep wall. An
  // end-to-end checkpoint-on/off A/B of two ~6 s sweeps was tried first
  // and cannot resolve the ~tens-of-ms true cost on a shared host whose
  // run-to-run swing is an order of magnitude larger; timing the commit
  // path directly is stable run to run, and a quiet-host CLI A/B agrees
  // with it. Best-of trials, fresh directory per trial.
  const std::uint64_t ckpt_shard_machines =
      std::max<std::uint64_t>(1, (kMachines + 63) / 64);
  const std::uint64_t ckpt_shards =
      (kMachines + ckpt_shard_machines - 1) / ckpt_shard_machines;
  constexpr int kCheckpointTrials = 3;
  std::printf("fleet: checkpoint commit path, %llu shard commits + final "
              "sync (best of %d replays)...\n",
              static_cast<unsigned long long>(ckpt_shards), kCheckpointTrials);
  double ckpt_commit_wall = 0.0;
  for (int trial = 0; trial < kCheckpointTrials; ++trial) {
    char tmpl[] = "/tmp/fgcs-ckpt-bench-XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "checkpoint bench: mkdtemp failed\n");
      return 1;
    }
    const std::string dir = made;
    const auto start = std::chrono::steady_clock::now();
    fgcs::recover::CheckpointLog log(dir, /*fingerprint=*/0x4247435346474353ULL,
                                     ckpt_shards);
    for (std::uint64_t s = 0; s < ckpt_shards; ++s) {
      fgcs::recover::ShardState state;
      state.records = 13507;
      state.counters.sim_events_executed = 1000000 + s;
      state.counters.testbed_machines = ckpt_shard_machines;
      fgcs::recover::ShardCheckpoint cp;
      cp.shard = s;
      cp.first_machine = static_cast<std::uint32_t>(s * ckpt_shard_machines);
      cp.machine_count = static_cast<std::uint32_t>(ckpt_shard_machines);
      cp.records = state.records;
      char seg[32];
      std::snprintf(seg, sizeof seg, "shard-%04llu.trc2",
                    static_cast<unsigned long long>(s));
      cp.segment_name = seg;
      cp.state_name = fgcs::recover::shard_state_name(s);
      cp.segment_crc = 0xDEADBEEF;
      cp.segment_bytes = 43000;
      cp.rng_key = fgcs::recover::shard_rng_key(20050815, cp.first_machine);
      cp.state_crc = fgcs::recover::write_shard_state(
          dir + "/" + cp.state_name, state);
      log.commit(cp);
    }
    log.sync();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (ckpt_commit_wall == 0.0 || wall < ckpt_commit_wall) {
      ckpt_commit_wall = wall;
    }
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::printf("fleet: full sweep, %u machines x %d days, %zu thread(s)...\n",
              kMachines, kFullDays, sweep.back());
  const auto full = measure_fleet(kMachines, kFullDays, sweep.back(), true);
  if (!full.ok) return 1;

  const double ckpt_overhead_pct =
      ckpt_commit_wall / full.wall_seconds * 100.0;
  std::printf("fleet:   commit path %.1f ms -> %.2f%% of the %.2fs full "
              "sweep\n",
              ckpt_commit_wall * 1e3, ckpt_overhead_pct, full.wall_seconds);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buffer[512];
  out << "{\n  \"suite\": \"fleet\",\n";
  std::snprintf(buffer, sizeof buffer,
                "  \"machines\": %u,\n  \"sweep_days\": %d,\n"
                "  \"hardware_threads\": %zu,\n",
                kMachines, kSweepDays, hw);
  out << buffer;
  const double single_rate =
      sweep_runs.front().machine_days_per_sec(kMachines, kSweepDays);
  out << "  \"threads_sweep\": [\n";
  for (std::size_t i = 0; i < sweep_runs.size(); ++i) {
    // Scaling efficiency: throughput per thread relative to the
    // single-thread rate (1.0 = perfect linear scaling).
    const double rate =
        sweep_runs[i].machine_days_per_sec(kMachines, kSweepDays);
    const double efficiency =
        rate / (static_cast<double>(sweep[i]) * single_rate);
    std::snprintf(buffer, sizeof buffer,
                  "    {\"threads\": %zu, \"wall_seconds\": %.2f, "
                  "\"machine_days_per_sec\": %.0f, "
                  "\"scaling_efficiency\": %.3f, \"peak_rss_mb\": %.1f}%s\n",
                  sweep[i], sweep_runs[i].wall_seconds, rate, efficiency,
                  sweep_runs[i].peak_rss_mb,
                  i + 1 == sweep_runs.size() ? "" : ",");
    out << buffer;
  }
  out << "  ],\n  \"threads_skipped_above_hardware\": [";
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    std::snprintf(buffer, sizeof buffer, "%s%zu", i == 0 ? "" : ", ",
                  skipped[i]);
    out << buffer;
  }
  out << "],\n";
  if (!skipped.empty()) {
    out << "  \"threads_sweep_note\": \"sweep points above hardware_threads "
           "were skipped: oversubscription measures scheduler noise, not "
           "scaling\",\n";
  }
  std::snprintf(buffer, sizeof buffer,
                "  \"single_thread_machine_days_per_sec\": %.0f,\n"
                "  \"steady_state_allocs_per_machine_day\": %.2f,\n"
                "  \"steady_state_alloc_machines\": %u,\n"
                "  \"inmemory_peak_rss_mb\": %.1f,\n"
                "  \"spill_peak_rss_mb\": %.1f,\n",
                single_rate, allocs_per_md, kAllocMachines, inmem.peak_rss_mb,
                sweep_runs.front().peak_rss_mb);
  out << buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"checkpoint_commit_shards\": %llu,\n"
                "  \"checkpoint_commit_wall_seconds\": %.4f,\n"
                "  \"checkpoint_overhead_percent\": %.2f,\n",
                static_cast<unsigned long long>(ckpt_shards),
                ckpt_commit_wall, ckpt_overhead_pct);
  out << buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"full_days\": %d,\n  \"full_threads\": %zu,\n"
                "  \"full_records\": %llu,\n  \"full_wall_seconds\": %.2f,\n"
                "  \"full_machine_days_per_sec\": %.0f,\n"
                "  \"full_peak_rss_mb\": %.1f\n}\n",
                kFullDays, sweep.back(),
                static_cast<unsigned long long>(full.records),
                full.wall_seconds,
                full.machine_days_per_sec(kMachines, kFullDays),
                full.peak_rss_mb);
  out << buffer;
  std::printf("fleet: full sweep %.2fs wall, %llu records, %.0f "
              "machine-days/s, peak RSS %.1f MB -> %s\n",
              full.wall_seconds,
              static_cast<unsigned long long>(full.records),
              full.machine_days_per_sec(kMachines, kFullDays),
              full.peak_rss_mb, path.c_str());
  return 0;
}

// --- query suite ---------------------------------------------------------

struct QueryRun {
  bool ok = false;
  double wall_seconds = 0.0;
  std::uint64_t records_scanned = 0;
  std::uint64_t records_matched = 0;
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  double availability_sum = 0.0;  // aggregation checksum
  double peak_rss_mb = 0.0;

  double records_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(records_scanned) / wall_seconds
               : 0.0;
  }
};

// One streaming query over a spill directory, in a forked child so
// wait4()'s ru_maxrss isolates the scan's peak RSS — the number that
// proves the engine stays O(shard + block) instead of materializing the
// fleet. Single worker thread: the bench box's gated configuration.
QueryRun measure_query(const std::string& dir, const std::string& pred,
                       bool pushdown) {
  struct Payload {
    double wall_seconds;
    std::uint64_t records_scanned;
    std::uint64_t records_matched;
    std::uint64_t blocks_total;
    std::uint64_t blocks_scanned;
    std::uint64_t blocks_skipped;
    double availability_sum;
  };

  int fds[2];
  if (pipe(fds) != 0) {
    std::fprintf(stderr, "query bench: pipe failed\n");
    return {};
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "query bench: fork failed\n");
    close(fds[0]);
    close(fds[1]);
    return {};
  }
  if (pid == 0) {
    close(fds[0]);
    int rc = 1;
    try {
      const query::SegmentQuery segments(
          query::SegmentQuery::list_segments(dir));
      util::ThreadPool pool(1);
      query::QueryOptions options;
      options.predicate = query::Predicate::parse(pred);
      options.disable_pruning = !pushdown;
      options.pool = &pool;
      const auto start = std::chrono::steady_clock::now();
      const auto result = segments.run(options);
      Payload p;
      p.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      p.records_scanned = result.stats.records_scanned;
      p.records_matched = result.stats.records_matched;
      p.blocks_total = result.stats.blocks_total;
      p.blocks_scanned = result.stats.blocks_scanned;
      p.blocks_skipped = result.stats.blocks_skipped;
      p.availability_sum = result.training.availability_sum;
      if (write(fds[1], &p, sizeof p) == sizeof p) rc = 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "query bench child: %s\n", e.what());
    }
    _exit(rc);
  }

  close(fds[1]);
  Payload p{};
  const bool got = read(fds[0], &p, sizeof p) == sizeof p;
  close(fds[0]);

  rusage usage{};
  int status = 0;
  wait4(pid, &status, 0, &usage);
  QueryRun run;
  run.wall_seconds = p.wall_seconds;
  run.records_scanned = p.records_scanned;
  run.records_matched = p.records_matched;
  run.blocks_total = p.blocks_total;
  run.blocks_scanned = p.blocks_scanned;
  run.blocks_skipped = p.blocks_skipped;
  run.availability_sum = p.availability_sum;
  run.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB
  run.ok = got && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!run.ok) std::fprintf(stderr, "query bench: child run failed\n");
  return run;
}

// The streaming analytics engine at fleet scale: spill a million-machine
// day with `fleet`, then run the full analyzer + training-scan
// aggregation pass over the segments — once as a full scan (the gated
// single-thread throughput) and once under a selective predicate to
// demonstrate zone-map pushdown skipping blocks. Peak RSS is measured
// per scan in a forked child and must stay bounded by shard + block,
// not fleet size.
int run_query_suite(const std::string& path) {
  constexpr std::uint32_t kMachines = 1'000'000;
  constexpr int kDays = 1;
  constexpr std::uint64_t kShardMachines = 15'625;  // 64 shards

  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));

  char tmpl[] = "/tmp/fgcs-query-bench-XXXXXX";
  const char* made = mkdtemp(tmpl);
  if (made == nullptr) {
    std::fprintf(stderr, "query bench: mkdtemp failed\n");
    return 1;
  }
  const std::string dir = made;

  std::printf("query: spilling %u machines x %d day (%llu machines/shard, "
              "%zu thread(s))...\n",
              kMachines, kDays,
              static_cast<unsigned long long>(kShardMachines), hw);
  std::uint64_t total_records = 0;
  double spill_wall = 0.0;
  try {
    fleet::FleetConfig config;
    config.testbed.machines = kMachines;
    config.testbed.days = kDays;
    config.shard_machines = kShardMachines;
    config.threads = hw;
    config.spill_dir = dir;
    const auto start = std::chrono::steady_clock::now();
    const auto result = fleet::run_fleet(config);
    spill_wall = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    total_records = result.total_records;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "query bench: spill failed: %s\n", e.what());
    std::filesystem::remove_all(dir);
    return 1;
  }
  std::printf("query:   %.1fs wall, %llu records\n", spill_wall,
              static_cast<unsigned long long>(total_records));

  // Full scan: every aggregation over every record, single worker. The
  // gated scalar, so best-of-3 against shared-host noise.
  constexpr int kTrials = 3;
  QueryRun full{};
  for (int t = 0; t < kTrials; ++t) {
    std::printf("query: full scan, 1 worker (trial %d/%d)...\n", t + 1,
                kTrials);
    const auto run = measure_query(dir, "all", true);
    if (!run.ok) {
      std::filesystem::remove_all(dir);
      return 1;
    }
    std::printf("query:   %.2fs wall, %.0f records/s, peak RSS %.1f MB\n",
                run.wall_seconds, run.records_per_sec(), run.peak_rss_mb);
    if (t == 0 || run.wall_seconds < full.wall_seconds) full = run;
  }

  // Selective predicate: 1% of the machine space. Zone-map + footer
  // machine-range pushdown must skip >= 90% of the blocks (gated).
  const std::string selective_pred = "machine=[0,10000)";
  std::printf("query: selective scan, pred \"%s\"...\n",
              selective_pred.c_str());
  const auto selective = measure_query(dir, selective_pred, true);
  if (!selective.ok) {
    std::filesystem::remove_all(dir);
    return 1;
  }
  const double skip_fraction =
      selective.blocks_total > 0
          ? static_cast<double>(selective.blocks_skipped) /
                static_cast<double>(selective.blocks_total)
          : 0.0;
  std::printf("query:   %.2fs wall, blocks %llu skipped / %llu total "
              "(%.1f%%), peak RSS %.1f MB\n",
              selective.wall_seconds,
              static_cast<unsigned long long>(selective.blocks_skipped),
              static_cast<unsigned long long>(selective.blocks_total),
              skip_fraction * 100.0, selective.peak_rss_mb);

  std::filesystem::remove_all(dir);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buffer[1024];
  out << "{\n  \"suite\": \"query\",\n";
  std::snprintf(buffer, sizeof buffer,
                "  \"query_machines\": %u,\n"
                "  \"query_days\": %d,\n"
                "  \"query_shard_machines\": %llu,\n"
                "  \"query_total_records\": %llu,\n"
                "  \"query_spill_wall_seconds\": %.1f,\n"
                "  \"hardware_threads\": %zu,\n",
                kMachines, kDays,
                static_cast<unsigned long long>(kShardMachines),
                static_cast<unsigned long long>(total_records), spill_wall,
                hw);
  out << buffer;
  out << "  \"scaling_note\": \"this box exposes " << hw
      << " hardware thread(s), so the segment-parallel scan cannot "
         "demonstrate multi-worker scaling here; only the single-worker "
         "scan throughput and the peak-RSS ceiling are regression-gated "
         "(scripts/run_bench.sh)\",\n";
  std::snprintf(buffer, sizeof buffer,
                "  \"query_full_scan_wall_seconds\": %.2f,\n"
                "  \"query_single_thread_records_per_sec\": %.0f,\n"
                "  \"query_full_scan_blocks_total\": %llu,\n"
                "  \"query_full_scan_blocks_scanned\": %llu,\n"
                "  \"query_full_scan_peak_rss_mb\": %.1f,\n"
                "  \"query_availability_checksum\": %.6f,\n",
                full.wall_seconds, full.records_per_sec(),
                static_cast<unsigned long long>(full.blocks_total),
                static_cast<unsigned long long>(full.blocks_scanned),
                full.peak_rss_mb, full.availability_sum);
  out << buffer;
  std::snprintf(buffer, sizeof buffer,
                "  \"query_selective_predicate\": \"%s\",\n"
                "  \"query_selective_wall_seconds\": %.2f,\n"
                "  \"query_selective_blocks_skipped\": %llu,\n"
                "  \"query_selective_blocks_scanned\": %llu,\n"
                "  \"query_selective_blocks_skipped_fraction\": %.4f,\n"
                "  \"query_selective_records_matched\": %llu,\n"
                "  \"query_selective_peak_rss_mb\": %.1f\n}\n",
                selective_pred.c_str(), selective.wall_seconds,
                static_cast<unsigned long long>(selective.blocks_skipped),
                static_cast<unsigned long long>(selective.blocks_scanned),
                skip_fraction,
                static_cast<unsigned long long>(selective.records_matched),
                selective.peak_rss_mb);
  out << buffer;
  std::printf("query: full scan %.0f records/s (peak RSS %.1f MB), "
              "selective skips %.1f%% of blocks -> %s\n",
              full.records_per_sec(), full.peak_rss_mb,
              skip_fraction * 100.0, path.c_str());
  return 0;
}

}  // namespace

// The serving layer end to end at benchmark scale: a 2,000-machine fleet
// ingested record-by-record through AvailabilityFeed::ingest (the same
// incremental fold the observer event seam drives), then one million
// zipf-mixed point queries against the published snapshot. Latency is
// measured per query over a 200k sample; throughput over the full load.
int run_serve_suite(const std::string& path) {
  constexpr std::uint32_t kMachines = 2000;
  constexpr int kDays = 28;
  constexpr std::uint64_t kQueries = 1'000'000;
  constexpr std::uint64_t kLatencySample = 200'000;

  serve::FeedConfig fc;
  fc.machines = kMachines;
  fc.horizon_start = sim::SimTime::epoch();
  fc.publish_every = 1024;
  serve::AvailabilityFeed feed(fc);

  std::printf("serve: ingesting %u machines x %d days...\n", kMachines,
              kDays);
  core::TestbedConfig config;
  config.machines = kMachines;
  config.days = kDays;
  const core::TestbedRunner runner(config);
  core::MachineScratch scratch;
  std::vector<trace::UnavailabilityRecord> records;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    runner.run_into(m, scratch, records);
    for (const auto& r : records) feed.ingest(r);
  }
  feed.publish();
  const double ingest_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_start)
          .count();
  const double ingested = static_cast<double>(feed.events_ingested());

  serve::LoadSpec spec;
  spec.machines = kMachines;
  spec.queries = kQueries;
  spec.mix = serve::MixSpec::parse("zipf:1.1");
  spec.at_hours = 24.0 * kDays + 1.0;  // strictly past every episode
  spec.horizon_hours = 4.0;
  const serve::LoadGenerator gen(spec);
  const serve::QueryEngine engine(feed);

  std::printf("serve: timing %llu sampled queries...\n",
              static_cast<unsigned long long>(kLatencySample));
  std::vector<double> lat_us;
  lat_us.reserve(kLatencySample);
  {
    const auto snap = engine.pin();
    for (std::uint64_t i = 0; i < kLatencySample; ++i) {
      const serve::ServeQuery q = gen.query(i);
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(engine.query(*snap, q).p_available);
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  std::sort(lat_us.begin(), lat_us.end());
  const double p50 = lat_us[lat_us.size() / 2];
  const double p99 = lat_us[lat_us.size() * 99 / 100];

  std::printf("serve: running the %lluM-query load...\n",
              static_cast<unsigned long long>(kQueries / 1'000'000));
  const auto load_start = std::chrono::steady_clock::now();
  const serve::LoadStats stats = serve::run_load(engine, gen, 0, kQueries);
  const double load_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_start)
          .count();
  const double qps = static_cast<double>(stats.queries) / load_wall;

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buffer[1024];
  std::snprintf(
      buffer, sizeof buffer,
      "{\n"
      "  \"suite\": \"serve\",\n"
      "  \"serve_machines\": %u,\n"
      "  \"serve_days\": %d,\n"
      "  \"serve_ingest_events\": %.0f,\n"
      "  \"serve_ingest_events_per_sec\": %.0f,\n"
      "  \"serve_snapshot_swaps\": %llu,\n"
      "  \"serve_mix\": \"%s\",\n"
      "  \"serve_queries\": %llu,\n"
      "  \"serve_queries_per_sec\": %.0f,\n"
      "  \"serve_latency_p50_us\": %.4f,\n"
      "  \"serve_latency_p99_us\": %.4f,\n"
      "  \"serve_prob_checksum\": %.6f\n"
      "}\n",
      kMachines, kDays, ingested, ingested / ingest_wall,
      static_cast<unsigned long long>(feed.snapshots_published()),
      spec.mix.str().c_str(), static_cast<unsigned long long>(stats.queries),
      qps, p50, p99, stats.prob_sum);
  out << buffer;
  std::printf(
      "serve: ingest %.0f ev/s (%.0f episodes, %.2fs), %.2fM q/s, "
      "latency p50 %.3fus p99 %.3fus -> %s\n",
      ingested / ingest_wall, ingested, ingest_wall, qps / 1e6, p50, p99,
      path.c_str());
  return 0;
}

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string simcore_path;
  std::string fleet_path;
  std::string serve_path;
  std::string query_path;
  bool run_baseline = false;
  bool run_simcore = false;
  bool run_fleet = false;
  bool run_serve = false;
  bool run_query = false;
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--obs-baseline") {
      run_baseline = true;
      baseline_path = "BENCH_obs.json";
    } else if (arg.rfind("--obs-baseline=", 0) == 0) {
      run_baseline = true;
      baseline_path = arg.substr(std::string_view("--obs-baseline=").size());
    } else if (arg == "--simcore") {
      run_simcore = true;
      simcore_path = "BENCH_simcore.json";
    } else if (arg.rfind("--simcore=", 0) == 0) {
      run_simcore = true;
      simcore_path = arg.substr(std::string_view("--simcore=").size());
    } else if (arg == "--fleet") {
      run_fleet = true;
      fleet_path = "BENCH_fleet.json";
    } else if (arg.rfind("--fleet=", 0) == 0) {
      run_fleet = true;
      fleet_path = arg.substr(std::string_view("--fleet=").size());
    } else if (arg == "--serve") {
      run_serve = true;
      serve_path = "BENCH_serve.json";
    } else if (arg.rfind("--serve=", 0) == 0) {
      run_serve = true;
      serve_path = arg.substr(std::string_view("--serve=").size());
    } else if (arg == "--query") {
      run_query = true;
      query_path = "BENCH_query.json";
    } else if (arg.rfind("--query=", 0) == 0) {
      run_query = true;
      query_path = arg.substr(std::string_view("--query=").size());
    } else if (arg == "--all") {
      run_baseline = true;
      run_simcore = true;
      run_fleet = true;
      run_serve = true;
      run_query = true;
      if (baseline_path.empty()) baseline_path = "BENCH_obs.json";
      if (simcore_path.empty()) simcore_path = "BENCH_simcore.json";
      if (fleet_path.empty()) fleet_path = "BENCH_fleet.json";
      if (serve_path.empty()) serve_path = "BENCH_serve.json";
      if (query_path.empty()) query_path = "BENCH_query.json";
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  if (run_baseline || run_simcore || run_fleet || run_serve || run_query) {
    int rc = 0;
    if (run_simcore) rc |= run_simcore_suite(simcore_path);
    if (run_baseline) rc |= run_obs_baseline(baseline_path);
    if (run_fleet) rc |= run_fleet_suite(fleet_path);
    if (run_serve) rc |= run_serve_suite(serve_path);
    if (run_query) rc |= run_query_suite(query_path);
    return rc;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

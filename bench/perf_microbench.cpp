// Library micro-benchmarks (google-benchmark): the hot paths of the
// simulation and analysis pipeline.
#include <benchmark/benchmark.h>

#include <sstream>

#include "fgcs/core/testbed.hpp"
#include "fgcs/ishare/system.hpp"
#include "fgcs/monitor/detector.hpp"
#include "fgcs/os/machine.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/sim/simulation.hpp"
#include "fgcs/stats/ecdf.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/workload/load_model.hpp"
#include "fgcs/workload/synthetic.hpp"

using namespace fgcs;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation simulation;
    for (int i = 0; i < 1000; ++i) {
      simulation.after(sim::SimDuration::millis(i % 97), [] {});
    }
    simulation.run_all();
    benchmark::DoNotOptimize(simulation.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_MachineTick(benchmark::State& state) {
  const auto procs = state.range(0);
  os::Machine machine(os::SchedulerParams::linux_2_4(),
                      os::MemoryParams::linux_1gb(), 42);
  util::RngStream rng(7);
  for (std::int64_t i = 0; i < procs; ++i) {
    machine.spawn(workload::synthetic_host(0.3 + 0.05 * (i % 5)));
  }
  machine.spawn(workload::synthetic_guest(19));
  for (auto _ : state) {
    machine.run_for(sim::SimDuration::seconds(1));  // 100 ticks
    benchmark::DoNotOptimize(machine.totals().total().as_micros());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MachineTick)->Arg(2)->Arg(5)->Arg(10);

void BM_DetectorObserve(benchmark::State& state) {
  monitor::UnavailabilityDetector detector{
      monitor::ThresholdPolicy::linux_testbed()};
  util::RngStream rng(11);
  sim::SimTime t = sim::SimTime::epoch();
  for (auto _ : state) {
    t += sim::SimDuration::seconds(15);
    monitor::HostSample s;
    s.time = t;
    s.host_cpu = rng.uniform();
    s.free_mem_mb = 300.0 + 600.0 * rng.uniform();
    s.service_alive = true;
    benchmark::DoNotOptimize(detector.observe(s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorObserve);

void BM_GenerateMachineLoadDay(benchmark::State& state) {
  const auto profile = workload::LabProfile::purdue_lab();
  std::uint32_t machine = 0;
  for (auto _ : state) {
    auto trace = workload::generate_machine_load(profile, 99, machine++, 7);
    benchmark::DoNotOptimize(trace.load.points().size());
  }
  state.SetItemsProcessed(state.iterations() * 7);  // machine-days
}
BENCHMARK(BM_GenerateMachineLoadDay);

void BM_TestbedMachineWeek(benchmark::State& state) {
  core::TestbedConfig config;
  config.days = 7;
  config.machines = 1;
  for (auto _ : state) {
    auto records = core::run_testbed_machine(config, 0);
    benchmark::DoNotOptimize(records.size());
  }
  state.SetItemsProcessed(state.iterations() * 7);
}
BENCHMARK(BM_TestbedMachineWeek);

void BM_EcdfEval(benchmark::State& state) {
  util::RngStream rng(3);
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng.uniform(0.0, 12.0);
  stats::Ecdf ecdf{xs};
  double q = 0.0;
  for (auto _ : state) {
    q += 0.37;
    if (q > 12.0) q = 0.0;
    benchmark::DoNotOptimize(ecdf(q));
  }
}
BENCHMARK(BM_EcdfEval);

void BM_TraceRoundTripBinary(benchmark::State& state) {
  core::TestbedConfig config;
  config.days = 14;
  config.machines = 4;
  const auto trace = core::run_testbed(config);
  for (auto _ : state) {
    std::stringstream buffer;
    trace::write_trace_binary(trace, buffer);
    auto loaded = trace::read_trace_binary(buffer);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_TraceRoundTripBinary);

void BM_HistoryWindowPredict(benchmark::State& state) {
  core::TestbedConfig config;
  config.days = 35;
  config.machines = 4;
  const auto trace = core::run_testbed(config);
  const trace::TraceIndex index(trace);
  const trace::TraceCalendar calendar;
  predict::HistoryWindowPredictor predictor;
  predictor.attach(index, calendar);
  sim::SimTime t = trace.horizon_start() + sim::SimDuration::days(30);
  for (auto _ : state) {
    t += sim::SimDuration::minutes(30);
    if (t + sim::SimDuration::hours(2) >= trace.horizon_end()) {
      t = trace.horizon_start() + sim::SimDuration::days(30);
    }
    predict::PredictionQuery q{0, t, sim::SimDuration::hours(2)};
    benchmark::DoNotOptimize(predictor.predict_availability(q));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryWindowPredict);

void BM_IshareClusterHour(benchmark::State& state) {
  for (auto _ : state) {
    ishare::FgcsSystem system;
    for (int n = 0; n < 4; ++n) {
      ishare::NodeConfig cfg;
      cfg.host_processes = {workload::synthetic_host(0.2 + 0.15 * n)};
      system.add_node(cfg);
    }
    ishare::GuestJob job;
    job.work = sim::SimDuration::minutes(20);
    for (int i = 0; i < 6; ++i) system.submit(job);
    system.run_for(sim::SimDuration::hours(1));
    benchmark::DoNotOptimize(system.stats().completed);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // node-hours
}
BENCHMARK(BM_IshareClusterHour);

}  // namespace

BENCHMARK_MAIN();

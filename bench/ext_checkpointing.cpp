// Extension: checkpointing vs restart-from-scratch for guest jobs.
//
// The paper's guest jobs are batch programs that die with the resource
// (§1, §4: "the guest process is already killed or migrated off and no
// state is left on the host"). A natural follow-up for proactive
// management is checkpointing: how much response time does periodic
// checkpointing buy on this availability trace, as a function of the
// checkpoint interval and its overhead?
#include <cstdio>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/stats/descriptive.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;
using namespace fgcs::sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

namespace {

/// Runs a job of `len` CPU-work on machine `m` from `submit`.
/// `checkpoint_every` <= 0 disables checkpointing; otherwise progress is
/// saved at that cadence, each checkpoint costing `overhead`.
SimDuration run_job(const trace::TraceIndex& index, trace::MachineId m,
                    SimTime submit, SimDuration len,
                    SimDuration checkpoint_every, SimDuration overhead,
                    SimTime horizon) {
  SimTime t = submit;
  SimDuration done = SimDuration::zero();  // checkpointed progress
  const SimDuration resubmit = 30_min;
  while (done < len) {
    // Work remaining, padded with the checkpoints we will take.
    const SimDuration remaining = len - done;
    SimDuration wall = remaining;
    if (checkpoint_every > SimDuration::zero()) {
      const auto checkpoints =
          remaining.as_micros() / checkpoint_every.as_micros();
      wall += overhead * checkpoints;
    }
    if (t + wall > horizon) return horizon - submit;  // censored

    const auto* ep = index.first_overlap(m, t, t + wall);
    if (ep == nullptr) {
      return (t + wall) - submit;  // completed
    }
    if (ep->start > t) {
      // Ran until the failure; keep whatever was checkpointed.
      const SimDuration ran = ep->start - t;
      if (checkpoint_every > SimDuration::zero()) {
        const SimDuration slot = checkpoint_every + overhead;
        const auto completed_slots = ran.as_micros() / slot.as_micros();
        done += checkpoint_every * completed_slots;
        if (done > len) done = len;
      }
      // Without checkpointing: all progress since `done` is lost.
    }
    t = ep->end + 5_min + resubmit;
  }
  return t - submit;
}

}  // namespace

int main() {
  std::printf(
      "== Extension: checkpointing ablation for guest jobs ==\n"
      "Jobs on the simulated testbed trace; a killed job resumes from its\n"
      "last checkpoint (or from scratch without checkpointing).\n\n");

  core::TestbedConfig config;
  config.machines = 12;
  config.days = 63;
  const auto trace = core::run_testbed(config);
  const trace::TraceIndex index(trace);
  const SimTime first_submit = trace.horizon_start() + SimDuration::days(7);
  const SimTime horizon = trace.horizon_end();

  const SimDuration overhead = 2_min;  // write + stage a checkpoint

  util::TextTable table({"Job length", "Checkpoint interval", "Mean response",
                         "P90 response", "Mean stretch"});
  util::RngStream rng(77);
  for (const SimDuration len : {4_h, 8_h, 16_h}) {
    for (const SimDuration interval :
         {SimDuration::zero(), 4_h, 2_h, 1_h, 30_min, 10_min}) {
      std::vector<double> responses;
      util::RngStream pick(77);  // same machine sequence for every policy
      for (SimTime submit = first_submit;
           submit + SimDuration::hours(48) < horizon; submit += 5_h) {
        const auto m = static_cast<trace::MachineId>(
            pick.uniform_index(config.machines));
        responses.push_back(
            run_job(index, m, submit, len, interval, overhead, horizon)
                .as_hours());
      }
      table.add(util::format_duration_s(len.as_seconds()),
                interval == SimDuration::zero()
                    ? "none"
                    : util::format_duration_s(interval.as_seconds()),
                util::format_duration_s(stats::mean(responses) * 3600),
                util::format_duration_s(
                    stats::quantile(responses, 0.9) * 3600),
                util::format_double(
                    stats::mean(responses) / len.as_hours(), 2));
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: without checkpoints, jobs longer than the typical\n"
      "availability interval (~3-4h weekday, Fig 6) almost never finish a\n"
      "clean run and response explodes; checkpointing caps the loss per\n"
      "kill at one interval. Too-frequent checkpoints pay more overhead\n"
      "than they save — the optimum sits near the classic sqrt(2*MTTF*C).\n");
  return 0;
}

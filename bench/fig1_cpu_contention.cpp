// Figure 1 reproduction: host CPU usage reduction under CPU contention.
//
// (a) guest at equal priority (nice 0) — the 5% crossing is Th1.
// (b) guest at lowest priority (nice 19) — the 5% crossing is Th2.
//
// Curves are printed per host-group size M (the paper shows M = 1..5 and
// notes the curves converge; we extend to M = 8 to show the saturation).
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

namespace {

void print_panel(const core::Fig1Result& result,
                 const core::Fig1Config& config, int nice,
                 const char* title) {
  std::printf("%s\n", title);
  std::vector<std::string> headers = {"L_H"};
  for (int m = 1; m <= config.max_group_size; ++m) {
    headers.push_back("M=" + std::to_string(m));
  }
  util::TextTable table(headers);
  for (double lh : config.lh_grid) {
    std::vector<std::string> row = {util::format_double(lh, 1)};
    for (int m = 1; m <= config.max_group_size; ++m) {
      if (lh < 0.02 * m) {
        row.push_back("-");
        continue;
      }
      row.push_back(
          util::format_percent(result.at(lh, m, nice).reduction, 1));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  std::printf(
      "== Figure 1: reduction rate of host CPU usage vs host load (L_H) ==\n"
      "Simulated %s machine; guest is a CPU-bound synthetic program.\n\n",
      os::SchedulerParams::linux_2_4().name.c_str());

  core::Fig1Config config;
  config.max_group_size = 8;  // paper used 1..5; 6..8 shows saturation
  const core::Fig1Result result = core::run_fig1(config);

  print_panel(result, config, 0,
              "(a) all processes at the same priority "
              "(paper: 5% crossing at Th1 ~= 0.2)");
  print_panel(result, config, 19,
              "(b) guest at lowest priority, nice 19 "
              "(paper: 5% crossing at Th2 ~= 0.6)");

  std::printf("thresholds read off the curves (5%% slowdown rule):\n");
  std::printf("  Th1 = %.2f   (paper: 0.20)\n", result.th1);
  std::printf("  Th2 = %.2f   (paper: 0.60)\n", result.th2);
  return 0;
}

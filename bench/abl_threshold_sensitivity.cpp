// Ablation: sensitivity of the detector to the Th1/Th2 choice.
//
// The paper calibrates Th1/Th2 offline per system (§3.1). This ablation
// runs the testbed detector with shifted thresholds and reports how the
// occurrence counts and interval statistics move — i.e. what a
// mis-calibrated monitor would have reported.
#include <cstdio>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf(
      "== Ablation: detector sensitivity to the Th2 threshold ==\n"
      "Same synthesized host behaviour; detector thresholds varied.\n\n");

  util::TextTable table({"Th2", "CPU occ/machine (mean)", "Total/machine",
                         "Weekday mean interval", "<5min intervals"});
  for (double th2 : {0.45, 0.525, 0.60, 0.675, 0.75}) {
    core::TestbedConfig config;
    config.policy.th2 = th2;
    const auto trace = core::run_testbed(config);
    const core::TraceAnalyzer analyzer(trace);
    const auto t2 = analyzer.table2();
    const auto iv = analyzer.intervals();
    table.add(util::format_double(th2, 3),
              util::format_double(t2.cpu_contention.mean, 1),
              util::format_double(t2.total.mean, 1),
              util::format_duration_s(iv.weekday.mean_hours * 3600),
              util::format_percent(iv.weekday.frac_under_5min, 1));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "reading: a lower Th2 reclassifies busy-but-usable periods as S3\n"
      "(more occurrences, shorter intervals); a higher Th2 misses real\n"
      "contention. The paper's offline calibration picks the knee.\n");
  return 0;
}
